//! The event-level invariant oracle.
//!
//! [`InvariantOracle`] implements [`EventSink`] and checks the
//! observability event stream of a run (attach with
//! [`run_crawl_with_sink`](mak::framework::engine::run_crawl_with_sink)):
//!
//! - **Monotonicity** — virtual clock, server-side covered lines,
//!   browser interaction count, and the crawler's distinct-URL count never
//!   decrease (from `StepStarted`/`StepFinished`). A `SessionResumed`
//!   marker re-baselines these checks: a crash-recovery splice
//!   legitimately rewinds to the last durable checkpoint before
//!   re-executing, and monotonicity is enforced afresh from there.
//! - **URL-normalization idempotence** — every fetched or redirected URL
//!   (emitted in canonical form) re-parses to itself, the link-coverage
//!   accounting identity (from `PageFetched`/`RedirectFollowed`).
//! - **Reward sanity** — rewards are finite; bandit-crawler rewards lie
//!   in `[0, 1]` (the Exp3.1 precondition; a run is known to be
//!   bandit-driven once it emits `ActionChosen`).
//! - **Leveled-deque consistency** — `DequeDepth::len` equals the sum of
//!   its per-level lengths.
//! - **Exp3.1 distribution validity** — the arm distribution is a simplex
//!   (sums to 1, entries in `[0, 1]`), respects the `γ/K` exploration
//!   floor, all weights stay finite and positive, and the maximum
//!   estimated gain never exceeds the epoch-termination bound
//!   `g_m − K/γ_m` (from `ActionChosen`/`PolicyUpdated`; the bound is
//!   the invariant that breaks when epoch advancement is broken).
//!
//! Violations are recorded, not panicked, so the fuzz driver can shrink
//! the failing case and write a replayable artifact.

use mak_obs::event::Event;
use mak_obs::sink::EventSink;
use mak_websim::url::Url;
use serde::{Deserialize, Serialize};

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Zero-based index of the step during which the violation was seen
    /// (0 for violations detected outside a step, e.g. differential
    /// mismatches).
    pub step: u64,
    /// Short invariant identifier, e.g. `"exp31-epoch-bound"`.
    pub invariant: String,
    /// Human-readable details with the observed values.
    pub details: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[step {}] {}: {}", self.step, self.invariant, self.details)
    }
}

/// Maximum violations kept per run; a broken invariant usually fails on
/// every subsequent step, and one witness per kind is all shrinking needs.
const MAX_VIOLATIONS: usize = 16;

/// The event-stream invariant checker. Attach one per run via
/// [`SinkHandle::shared`](mak_obs::sink::SinkHandle::shared).
#[derive(Debug, Default)]
pub struct InvariantOracle {
    /// Current step index, tracked from `StepStarted` so every event in
    /// between is attributed to the step it happened in.
    step: u64,
    /// Set once the run emits `ActionChosen`: the crawler is bandit-driven
    /// and its rewards must satisfy the Exp3.1 `[0, 1]` precondition.
    bandit_run: bool,
    last_t_ms: f64,
    last_lines: u64,
    last_urls: u64,
    last_interactions: u64,
    violations: Vec<Violation>,
}

impl InvariantOracle {
    /// A fresh oracle for one run.
    pub fn new() -> Self {
        Self::default()
    }

    /// All violations recorded so far, in detection order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Consumes the oracle, returning its violations.
    pub fn into_violations(self) -> Vec<Violation> {
        self.violations
    }

    fn fail(&mut self, invariant: &str, details: String) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(Violation {
                step: self.step,
                invariant: invariant.to_owned(),
                details,
            });
        }
    }

    fn check_clock(&mut self, t_ms: f64) {
        if t_ms < self.last_t_ms {
            self.fail("clock-monotone", format!("elapsed {t_ms}ms after {}ms", self.last_t_ms));
        }
        self.last_t_ms = t_ms;
    }

    /// URL-normalization idempotence: the canonical form must re-parse to
    /// itself, or link-coverage accounting would split one resource into
    /// several.
    fn check_url(&mut self, url: &str) {
        match url.parse::<Url>() {
            Ok(u) if u.normalized() == url => {}
            Ok(u) => self.fail(
                "url-normalization-idempotent",
                format!("normalized({url}) reparses to {}", u.normalized()),
            ),
            Err(e) => self.fail(
                "url-normalization-idempotent",
                format!("normalized form {url} does not reparse: {e}"),
            ),
        }
    }

    /// The arm distribution must be a valid simplex.
    fn check_simplex(&mut self, probs: &[f64]) {
        let sum: f64 = probs.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            self.fail("arm-simplex-sum", format!("probabilities sum to {sum}"));
        }
        if probs.iter().any(|p| !p.is_finite() || *p < 0.0 || *p > 1.0 + 1e-12) {
            self.fail("arm-simplex-range", format!("probabilities {probs:?}"));
        }
    }

    fn check_reward(&mut self, reward: f64) {
        if !reward.is_finite() {
            self.fail("reward-finite", format!("reward {reward}"));
        } else if self.bandit_run && !(0.0..=1.0).contains(&reward) {
            // Bandit rewards feed Exp3.1, whose analysis requires [0, 1].
            self.fail("mak-reward-range", format!("reward {reward} outside [0, 1]"));
        }
    }
}

impl EventSink for InvariantOracle {
    fn on_event(&mut self, event: &Event) {
        match event {
            Event::StepStarted { step, t_ms, .. } => {
                self.step = *step;
                self.check_clock(*t_ms);
            }
            Event::SessionResumed { step, t_ms, .. } => {
                // A crash-recovery splice: the session restarts from its
                // last durable checkpoint, so any steps the pre-crash
                // portion of the stream ran *past* that checkpoint were
                // executed but never persisted — the clock and coverage
                // counters legitimately rewind here, and the post-resume
                // events re-execute them identically. Re-baseline the
                // continuity checks at the checkpoint instead of flagging
                // the rewind; monotonicity is enforced again from the
                // resume point on.
                self.step = *step;
                self.last_t_ms = *t_ms;
                self.last_lines = 0;
                self.last_interactions = 0;
                self.last_urls = 0;
            }
            Event::ActionChosen { probs, .. } => {
                self.bandit_run = true;
                self.check_simplex(probs);
            }
            Event::PageFetched { url, .. } | Event::RedirectFollowed { url, .. } => {
                self.check_url(url);
            }
            Event::RewardComputed { reward, .. } => self.check_reward(*reward),
            Event::DequeDepth { len, levels } => {
                // Leveled-deque consistency: the cached length must equal
                // the sum of the per-level lengths.
                let summed: u64 = levels.iter().sum();
                if summed != *len {
                    self.fail(
                        "deque-consistency",
                        format!("len() = {len} but levels sum to {summed}"),
                    );
                }
            }
            Event::PolicyUpdated {
                probs,
                gamma,
                updates,
                max_gain,
                bound,
                min_weight,
                max_weight,
                epoch,
            } => {
                let (gamma, updates, epoch) = (*gamma, *updates, *epoch);
                let (max_gain, bound) = (*max_gain, *bound);
                let (min_weight, max_weight) = (*min_weight, *max_weight);
                let floor = gamma / probs.len() as f64;
                let low = probs.iter().cloned().fold(f64::INFINITY, f64::min);
                // γ-smoothing guarantees every arm at least γ/K probability.
                if low < floor - 1e-12 {
                    self.fail(
                        "exp31-exploration-floor",
                        format!("min p = {low} below γ/K = {floor}"),
                    );
                }
                if !min_weight.is_finite() || !max_weight.is_finite() || min_weight <= 0.0 {
                    self.fail(
                        "exp31-weight-finite",
                        format!(
                            "weights span [{min_weight}, {max_weight}] \
                             (must be finite and positive)"
                        ),
                    );
                }
                // Line 9 of Algorithm 1: after every completed update the
                // maximum estimated gain must sit at or below the
                // epoch-termination bound, because `advance_epochs` runs
                // until it does. Only meaningful once at least one update
                // happened (fixed-arm baselines never touch the policy).
                if updates > 0 && max_gain > bound + 1e-9 {
                    self.fail(
                        "exp31-epoch-bound",
                        format!(
                            "max Ĝ = {max_gain} exceeds g_m − K/γ_m = {bound} \
                             (epoch {epoch}, {updates} updates)"
                        ),
                    );
                }
            }
            Event::StepFinished { t_ms, reward, interactions, lines, distinct_urls, .. } => {
                self.check_clock(*t_ms);
                if let Some(r) = reward {
                    self.check_reward(*r);
                }
                if *lines < self.last_lines {
                    self.fail(
                        "coverage-monotone",
                        format!("covered lines fell {} -> {lines}", self.last_lines),
                    );
                }
                self.last_lines = *lines;
                if *interactions < self.last_interactions {
                    self.fail(
                        "interactions-monotone",
                        format!(
                            "interaction count fell {} -> {interactions}",
                            self.last_interactions
                        ),
                    );
                }
                self.last_interactions = *interactions;
                if *distinct_urls < self.last_urls {
                    self.fail(
                        "distinct-urls-monotone",
                        format!("distinct URLs fell {} -> {distinct_urls}", self.last_urls),
                    );
                }
                self.last_urls = *distinct_urls;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::BlueprintSpec;
    use mak::framework::engine::{run_crawl_with_sink, EngineConfig};
    use mak::spec::build_crawler;
    use mak_obs::sink::SinkHandle;

    #[test]
    fn clean_crawlers_produce_no_violations() {
        let spec = BlueprintSpec::generate(3);
        let config = EngineConfig::with_budget_minutes(0.5);
        for crawler in ["mak", "bfs", "random", "webexplor"] {
            let mut c = build_crawler(crawler, 1).unwrap();
            let (sink, cell) = SinkHandle::shared(InvariantOracle::new());
            let report = run_crawl_with_sink(&mut *c, Box::new(spec.build()), &config, 1, &sink);
            assert!(report.interactions > 0, "{crawler} did something");
            let oracle = cell.lock().unwrap();
            assert!(oracle.violations().is_empty(), "{crawler}: {:?}", oracle.violations());
        }
    }

    #[test]
    fn injected_epoch_bug_is_caught() {
        use mak::mak::MakCrawler;
        let spec = BlueprintSpec::generate(3);
        let mut c = MakCrawler::new(1);
        c.policy_mut().as_exp31_mut().expect("mak uses Exp3.1").testing_disable_epoch_advance();
        let (sink, cell) = SinkHandle::shared(InvariantOracle::new());
        run_crawl_with_sink(
            &mut c,
            Box::new(spec.build()),
            &EngineConfig::with_budget_minutes(0.5),
            1,
            &sink,
        );
        let oracle = cell.lock().unwrap();
        assert!(
            oracle.violations().iter().any(|v| v.invariant == "exp31-epoch-bound"),
            "epoch-advance bug must trip the bound invariant: {:?}",
            oracle.violations()
        );
    }

    #[test]
    fn violations_are_capped() {
        use mak::mak::MakCrawler;
        let spec = BlueprintSpec::generate(3);
        let mut c = MakCrawler::new(1);
        c.policy_mut().as_exp31_mut().unwrap().testing_disable_epoch_advance();
        let (sink, cell) = SinkHandle::shared(InvariantOracle::new());
        run_crawl_with_sink(
            &mut c,
            Box::new(spec.build()),
            &EngineConfig::with_budget_minutes(2.0),
            1,
            &sink,
        );
        let oracle = cell.lock().unwrap();
        assert!(!oracle.violations().is_empty());
        assert!(oracle.violations().len() <= MAX_VIOLATIONS);
    }

    #[test]
    fn resume_marker_rebaselines_the_continuity_checks() {
        fn finished(t_ms: f64, lines: u64) -> Event {
            Event::StepFinished {
                step: 0,
                t_ms,
                action: "Head".into(),
                reward: None,
                interactions: lines,
                lines,
                distinct_urls: lines,
            }
        }
        let resumed = Event::SessionResumed {
            app: "phpbb2".into(),
            crawler: "mak".into(),
            seed: 1,
            step: 2,
            t_ms: 40.0,
        };

        // A crash-recovery splice: the pre-crash stream ran to t=90/120
        // lines, past the checkpoint at t=40; the resumed stream rewinds
        // there and re-runs. Legal — no violations.
        let mut oracle = InvariantOracle::new();
        oracle.on_event(&finished(90.0, 120));
        oracle.on_event(&resumed);
        oracle.on_event(&finished(60.0, 80));
        oracle.on_event(&finished(95.0, 130));
        assert!(oracle.violations().is_empty(), "{:?}", oracle.violations());

        // The same rewind WITHOUT the marker is a violation.
        let mut oracle = InvariantOracle::new();
        oracle.on_event(&finished(90.0, 120));
        oracle.on_event(&finished(60.0, 80));
        let kinds: Vec<&str> = oracle.violations().iter().map(|v| v.invariant.as_str()).collect();
        assert!(kinds.contains(&"clock-monotone") && kinds.contains(&"coverage-monotone"));

        // And monotonicity is enforced again after the resume point.
        let mut oracle = InvariantOracle::new();
        oracle.on_event(&resumed);
        oracle.on_event(&finished(60.0, 80));
        oracle.on_event(&finished(50.0, 70));
        assert!(!oracle.violations().is_empty(), "post-resume rewinds still flagged");
    }

    #[test]
    fn oracle_flags_bad_synthetic_events() {
        let mut oracle = InvariantOracle::new();
        oracle.on_event(&Event::StepStarted { step: 0, t_ms: 100.0, policy_ms: 1.0 });
        oracle.on_event(&Event::StepStarted { step: 1, t_ms: 50.0, policy_ms: 1.0 });
        oracle.on_event(&Event::ActionChosen { arm: "Head".into(), probs: vec![0.9, 0.2] });
        oracle.on_event(&Event::DequeDepth { len: 5, levels: vec![1, 2] });
        oracle.on_event(&Event::RewardComputed { step: 1, action: "Head".into(), reward: 2.0 });
        let kinds: Vec<&str> = oracle.violations().iter().map(|v| v.invariant.as_str()).collect();
        assert_eq!(
            kinds,
            vec!["clock-monotone", "arm-simplex-sum", "deque-consistency", "mak-reward-range"]
        );
        assert!(oracle.violations().iter().skip(1).all(|v| v.step == 1), "attributed to step 1");
    }
}
