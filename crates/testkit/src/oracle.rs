//! The step-level invariant oracle.
//!
//! [`InvariantOracle`] implements the engine's feature-gated
//! [`StepObserver`] hook and checks, after **every** successful crawl
//! step:
//!
//! - **Monotonicity** — virtual clock, server-side covered lines,
//!   browser interaction count, and the crawler's distinct-URL count never
//!   decrease.
//! - **URL-normalization idempotence** — the canonical form re-parses to
//!   itself (the link-coverage accounting identity).
//! - **Reward sanity** — rewards are finite; MAK rewards lie in `[0, 1]`
//!   (the Exp3.1 precondition).
//! - **Leveled-deque consistency** — `len()` equals the sum over
//!   per-level lengths (downcast via [`Crawler::as_any`]).
//! - **Exp3.1 distribution validity** — the arm distribution is a simplex
//!   (sums to 1, entries in `[0, 1]`), respects the `γ/K` exploration
//!   floor, all weights stay finite and positive, and the maximum
//!   estimated gain never exceeds the epoch-termination bound
//!   `g_m − K/γ_m` (the invariant that breaks when epoch advancement is
//!   broken).
//!
//! Violations are recorded, not panicked, so the fuzz driver can shrink
//! the failing case and write a replayable artifact.
//!
//! [`StepObserver`]: mak::framework::engine::StepObserver
//! [`Crawler::as_any`]: mak::framework::crawler::Crawler

use mak::framework::engine::{StepContext, StepObserver};
use mak::mak::MakCrawler;
use mak_websim::url::Url;
use serde::{Deserialize, Serialize};

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Zero-based index of the step after which the violation was seen
    /// (0 for violations detected outside a step, e.g. differential
    /// mismatches).
    pub step: u64,
    /// Short invariant identifier, e.g. `"exp31-epoch-bound"`.
    pub invariant: String,
    /// Human-readable details with the observed values.
    pub details: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[step {}] {}: {}", self.step, self.invariant, self.details)
    }
}

/// Maximum violations kept per run; a broken invariant usually fails on
/// every subsequent step, and one witness per kind is all shrinking needs.
const MAX_VIOLATIONS: usize = 16;

/// The step-level invariant checker. Attach with
/// [`run_crawl_observed`](mak::framework::engine::run_crawl_observed).
#[derive(Debug, Default)]
pub struct InvariantOracle {
    last_secs: f64,
    last_lines: u64,
    last_urls: usize,
    last_interactions: u64,
    violations: Vec<Violation>,
}

impl InvariantOracle {
    /// A fresh oracle for one run.
    pub fn new() -> Self {
        Self::default()
    }

    /// All violations recorded so far, in detection order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Consumes the oracle, returning its violations.
    pub fn into_violations(self) -> Vec<Violation> {
        self.violations
    }

    fn fail(&mut self, step: u64, invariant: &str, details: String) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(Violation { step, invariant: invariant.to_owned(), details });
        }
    }

    fn check_mak(&mut self, mak: &MakCrawler, step_index: u64, reward: Option<f64>) {
        // Leveled-deque consistency: the cached length must equal the sum
        // of the per-level lengths.
        let deque = mak.deque();
        let summed: usize = (0..deque.level_count()).map(|l| deque.level_len(l)).sum();
        if summed != deque.len() {
            self.fail(
                step_index,
                "deque-consistency",
                format!("len() = {} but levels sum to {summed}", deque.len()),
            );
        }

        // MAK rewards feed Exp3.1, whose analysis requires [0, 1].
        if let Some(r) = reward {
            if !(0.0..=1.0).contains(&r) {
                self.fail(step_index, "mak-reward-range", format!("reward {r} outside [0, 1]"));
            }
        }

        // The arm distribution must be a valid simplex.
        let probs = mak.arm_probabilities();
        let sum: f64 = probs.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            self.fail(step_index, "arm-simplex-sum", format!("probabilities sum to {sum}"));
        }
        if probs.iter().any(|p| !p.is_finite() || *p < 0.0 || *p > 1.0 + 1e-12) {
            self.fail(step_index, "arm-simplex-range", format!("probabilities {probs:?}"));
        }

        if let Some(exp) = mak.policy().as_exp31() {
            for (i, w) in exp.weights().iter().enumerate() {
                if !w.is_finite() || *w <= 0.0 {
                    self.fail(
                        step_index,
                        "exp31-weight-finite",
                        format!("weight[{i}] = {w} (must be finite and positive)"),
                    );
                }
            }
            // γ-smoothing guarantees every arm at least γ/K probability.
            let floor = exp.gamma() / probs.len() as f64;
            for (i, p) in probs.iter().enumerate() {
                if *p < floor - 1e-12 {
                    self.fail(
                        step_index,
                        "exp31-exploration-floor",
                        format!("p[{i}] = {p} below γ/K = {floor}"),
                    );
                }
            }
            // Line 9 of Algorithm 1: after every completed update the
            // maximum estimated gain must sit at or below the
            // epoch-termination bound, because `advance_epochs` runs until
            // it does. Only meaningful once at least one update happened
            // (fixed-arm baselines never touch the policy).
            if exp.steps() > 0 {
                let max_gain = exp.gains().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let bound = exp.epoch_termination_bound();
                if max_gain > bound + 1e-9 {
                    self.fail(
                        step_index,
                        "exp31-epoch-bound",
                        format!(
                            "max Ĝ = {max_gain} exceeds g_m − K/γ_m = {bound} \
                             (epoch {}, {} updates)",
                            exp.epoch(),
                            exp.steps()
                        ),
                    );
                }
            }
        }
    }
}

impl StepObserver for InvariantOracle {
    fn on_step(&mut self, ctx: &StepContext<'_>) {
        let step = ctx.index;

        let secs = ctx.browser.clock().elapsed_secs();
        if secs < self.last_secs {
            self.fail(step, "clock-monotone", format!("elapsed {secs}s after {}s", self.last_secs));
        }
        self.last_secs = secs;

        let lines = ctx.browser.host().harness_lines_covered();
        if lines < self.last_lines {
            self.fail(
                step,
                "coverage-monotone",
                format!("covered lines fell {} -> {lines}", self.last_lines),
            );
        }
        self.last_lines = lines;

        let interactions = ctx.browser.interaction_count();
        if interactions < self.last_interactions {
            self.fail(
                step,
                "interactions-monotone",
                format!("interaction count fell {} -> {interactions}", self.last_interactions),
            );
        }
        self.last_interactions = interactions;

        let urls = ctx.crawler.distinct_urls();
        if urls < self.last_urls {
            self.fail(
                step,
                "distinct-urls-monotone",
                format!("distinct URLs fell {} -> {urls}", self.last_urls),
            );
        }
        self.last_urls = urls;

        // URL-normalization idempotence on the crawl origin: the
        // canonical form must re-parse to itself, or link-coverage
        // accounting would split one resource into several.
        let norm = ctx.browser.origin().normalized();
        match norm.parse::<Url>() {
            Ok(u) if u.normalized() == norm => {}
            Ok(u) => self.fail(
                step,
                "url-normalization-idempotent",
                format!("normalized({norm}) reparses to {}", u.normalized()),
            ),
            Err(e) => self.fail(
                step,
                "url-normalization-idempotent",
                format!("normalized form {norm} does not reparse: {e}"),
            ),
        }

        if let Some(r) = ctx.step.reward {
            if !r.is_finite() {
                self.fail(step, "reward-finite", format!("reward {r}"));
            }
        }

        if let Some(any) = ctx.crawler.as_any() {
            if let Some(mak) = any.downcast_ref::<MakCrawler>() {
                self.check_mak(mak, step, ctx.step.reward);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::BlueprintSpec;
    use mak::framework::engine::{run_crawl_observed, EngineConfig};
    use mak::spec::build_crawler;

    #[test]
    fn clean_crawlers_produce_no_violations() {
        let spec = BlueprintSpec::generate(3);
        let config = EngineConfig::with_budget_minutes(0.5);
        for crawler in ["mak", "bfs", "random", "webexplor"] {
            let mut c = build_crawler(crawler, 1).unwrap();
            let mut oracle = InvariantOracle::new();
            let report =
                run_crawl_observed(&mut *c, Box::new(spec.build()), &config, 1, &mut oracle);
            assert!(report.interactions > 0, "{crawler} did something");
            assert!(oracle.violations().is_empty(), "{crawler}: {:?}", oracle.violations());
        }
    }

    #[test]
    fn injected_epoch_bug_is_caught() {
        use mak::mak::MakCrawler;
        let spec = BlueprintSpec::generate(3);
        let mut c = MakCrawler::new(1);
        c.policy_mut().as_exp31_mut().expect("mak uses Exp3.1").testing_disable_epoch_advance();
        let mut oracle = InvariantOracle::new();
        run_crawl_observed(
            &mut c,
            Box::new(spec.build()),
            &EngineConfig::with_budget_minutes(0.5),
            1,
            &mut oracle,
        );
        assert!(
            oracle.violations().iter().any(|v| v.invariant == "exp31-epoch-bound"),
            "epoch-advance bug must trip the bound invariant: {:?}",
            oracle.violations()
        );
    }

    #[test]
    fn violations_are_capped() {
        use mak::mak::MakCrawler;
        let spec = BlueprintSpec::generate(3);
        let mut c = MakCrawler::new(1);
        c.policy_mut().as_exp31_mut().unwrap().testing_disable_epoch_advance();
        let mut oracle = InvariantOracle::new();
        run_crawl_observed(
            &mut c,
            Box::new(spec.build()),
            &EngineConfig::with_budget_minutes(2.0),
            1,
            &mut oracle,
        );
        assert!(!oracle.violations().is_empty());
        assert!(oracle.violations().len() <= MAX_VIOLATIONS);
    }
}
