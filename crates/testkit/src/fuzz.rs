//! The fuzz driver behind `mak-cli fuzz`.
//!
//! [`run_fuzz`] generates `apps` adversarial blueprints from consecutive
//! seeds, runs every configured crawler on each under the step-level
//! [`InvariantOracle`](crate::oracle::InvariantOracle), and cross-checks
//! the differential oracles (rerun ≡ first, parallel ≡ sequential,
//! cached ≡ fresh). Any failure is shrunk by
//! [`shrink`](crate::shrink::shrink) and written to disk as a
//! [`FailureArtifact`] — a self-contained JSON file that
//! [`replay`] (and `mak-cli fuzz --replay <file>`) can re-execute later.
//!
//! The whole campaign is a pure function of [`FuzzConfig`]: same config,
//! same apps, same violations, same artifacts.

use crate::differential::{
    check_cache_roundtrip, check_parallel_sequential, check_rerun_identical,
    check_session_equivalence, check_snapshot_roundtrip, oracle_crawl,
};
use crate::generate::BlueprintSpec;
use crate::oracle::Violation;
use crate::shrink::shrink;
use mak::framework::engine::{run_crawl, CrawlReport, EngineConfig};
use mak::spec::{build_crawler, CRAWLER_NAMES, MAK_VARIANTS};
use mak_browser::fault::FaultPlan;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Configuration of one fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of generated applications.
    pub apps: u64,
    /// Crawl seeds per (app, crawler) cell.
    pub seeds: u64,
    /// Base seed for blueprint generation; app `a` uses `base_seed + a`.
    pub base_seed: u64,
    /// Crawler names to exercise (see [`mak::spec::build_crawler`]).
    pub crawlers: Vec<String>,
    /// Virtual crawl budget per run, in minutes.
    pub budget_minutes: f64,
    /// Directory for failure artifacts.
    pub out_dir: PathBuf,
    /// Print per-app progress to stdout.
    pub progress: bool,
    /// Fault plan injected into every crawl (chaos mode); the empty plan
    /// fuzzes the fault-free browser.
    pub faults: FaultPlan,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            apps: 25,
            seeds: 2,
            base_seed: 0,
            crawlers: CRAWLER_NAMES.iter().chain(MAK_VARIANTS).map(|s| (*s).to_owned()).collect(),
            budget_minutes: 1.0,
            out_dir: PathBuf::from("results/fuzz"),
            progress: false,
            faults: FaultPlan::none(),
        }
    }
}

/// A self-contained, replayable description of one shrunk failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureArtifact {
    /// The (shrunk) blueprint that reproduces the violation.
    pub spec: BlueprintSpec,
    /// Crawler that violated an invariant.
    pub crawler: String,
    /// Crawl seed.
    pub seed: u64,
    /// Crawl budget in virtual minutes.
    pub budget_minutes: f64,
    /// The violation observed on the shrunk spec.
    pub violation: Violation,
    /// Candidate specs evaluated while shrinking.
    pub shrink_attempts: u64,
    /// The fault plan active during the failing crawl. Deserializes to the
    /// empty plan when absent, so pre-chaos artifacts stay replayable.
    pub faults: FaultPlan,
}

/// Summary of a fuzz campaign.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// Applications generated.
    pub apps: u64,
    /// Individual crawls executed (oracle runs; rerun/differential checks
    /// roughly double the true crawl count).
    pub runs: u64,
    /// Written artifacts, in detection order.
    pub failures: Vec<(PathBuf, FailureArtifact)>,
}

impl FuzzOutcome {
    /// True when no invariant or differential violation was found.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The engine config shared by every detection path: the budget plus the
/// campaign's fault plan.
fn engine_config(budget_minutes: f64, faults: &FaultPlan) -> EngineConfig {
    let mut config = EngineConfig::with_budget_minutes(budget_minutes);
    config.faults = faults.clone();
    config
}

/// Step-level + rerun + session + snapshot detection for one `(spec,
/// crawler, seed, budget)` cell: first oracle violation, else first rerun
/// mismatch, else a session-vs-one-shot divergence, else a checkpoint
/// round-trip divergence, else `None`. This is both the fuzz check and
/// the shrink predicate for such failures. Every generated blueprint
/// therefore exercises the cell through *three* execution paths — the
/// legacy one-shot engine, the resumable `Session` the serving layer
/// schedules, and an interrupt-serialize-restore-resume cycle through
/// the checkpoint codec (the crash-recovery contract).
pub fn detect_step_failure(
    spec: &BlueprintSpec,
    budget_minutes: f64,
    faults: &FaultPlan,
    crawler: &str,
    seed: u64,
) -> Option<Violation> {
    let config = engine_config(budget_minutes, faults);
    let mut c = build_crawler(crawler, seed).unwrap_or_else(|| panic!("unknown {crawler}"));
    let (report, violations) = oracle_crawl(&mut *c, spec, &config, seed);
    if let Some(v) = violations.into_iter().next() {
        return Some(v);
    }
    if let Err(v) = check_rerun_identical(spec, crawler, seed, &config, &report) {
        return Some(v);
    }
    if let Err(v) = check_session_equivalence(spec, crawler, seed, &config, &report) {
        return Some(v);
    }
    check_snapshot_roundtrip(spec, crawler, seed, &config, &report).err()
}

fn detect_parallel_failure(
    spec: &BlueprintSpec,
    budget_minutes: f64,
    faults: &FaultPlan,
    crawlers: &[String],
    seed: u64,
) -> Option<Violation> {
    let config = engine_config(budget_minutes, faults);
    let sequential: Vec<CrawlReport> = crawlers
        .iter()
        .map(|name| {
            let mut c = build_crawler(name, seed).unwrap_or_else(|| panic!("unknown {name}"));
            run_crawl(&mut *c, Box::new(spec.build()), &config, seed)
        })
        .collect();
    check_parallel_sequential(spec, crawlers, seed, &config, &sequential).into_iter().next()
}

fn detect_cache_failure(
    spec: &BlueprintSpec,
    budget_minutes: f64,
    faults: &FaultPlan,
    crawler: &str,
    seed: u64,
) -> Option<Violation> {
    let config = engine_config(budget_minutes, faults);
    let mut c = build_crawler(crawler, seed).unwrap_or_else(|| panic!("unknown {crawler}"));
    let report = run_crawl(&mut *c, Box::new(spec.build()), &config, seed);
    check_cache_roundtrip(spec, crawler, seed, &config, &report).err()
}

/// Runs a fuzz campaign. Failures are shrunk and written to
/// `cfg.out_dir/failure-<n>-<crawler>.json`.
pub fn run_fuzz(cfg: &FuzzConfig) -> std::io::Result<FuzzOutcome> {
    std::fs::create_dir_all(&cfg.out_dir)?;
    let mut outcome = FuzzOutcome { apps: cfg.apps, runs: 0, failures: Vec::new() };

    for a in 0..cfg.apps {
        let spec = BlueprintSpec::generate(cfg.base_seed + a);
        if cfg.progress && (a % 10 == 0 || a + 1 == cfg.apps) {
            println!(
                "app {:>4}/{} {:<12} ({} pages, {} modules) — {} failures so far",
                a + 1,
                cfg.apps,
                spec.name,
                spec.total_pages(),
                spec.modules.len(),
                outcome.failures.len()
            );
        }

        for s in 0..cfg.seeds {
            for crawler in &cfg.crawlers {
                outcome.runs += 1;
                if let Some(v) =
                    detect_step_failure(&spec, cfg.budget_minutes, &cfg.faults, crawler, s)
                {
                    record_failure(cfg, &mut outcome, &spec, crawler, s, v, &mut |sp, b| {
                        detect_step_failure(sp, b, &cfg.faults, crawler, s)
                    })?;
                }
            }
        }

        // Differential sweeps once per app, on the first seed: every
        // crawler in one parallel batch, plus a cache round-trip of the
        // first crawler's report.
        if let Some(v) =
            detect_parallel_failure(&spec, cfg.budget_minutes, &cfg.faults, &cfg.crawlers, 0)
        {
            let crawlers = cfg.crawlers.clone();
            record_failure(cfg, &mut outcome, &spec, "parallel-batch", 0, v, &mut |sp, b| {
                detect_parallel_failure(sp, b, &cfg.faults, &crawlers, 0)
            })?;
        }
        if let Some(first) = cfg.crawlers.first() {
            if let Some(v) = detect_cache_failure(&spec, cfg.budget_minutes, &cfg.faults, first, 0)
            {
                let name = first.clone();
                record_failure(cfg, &mut outcome, &spec, first, 0, v, &mut |sp, b| {
                    detect_cache_failure(sp, b, &cfg.faults, &name, 0)
                })?;
            }
        }
    }
    Ok(outcome)
}

fn record_failure(
    cfg: &FuzzConfig,
    outcome: &mut FuzzOutcome,
    spec: &BlueprintSpec,
    crawler: &str,
    seed: u64,
    violation: Violation,
    check: &mut dyn FnMut(&BlueprintSpec, f64) -> Option<Violation>,
) -> std::io::Result<()> {
    if cfg.progress {
        println!("  FAILURE {} / {crawler} seed {seed}: {violation}", spec.name);
    }
    let shrunk = shrink(spec, cfg.budget_minutes, &violation, check);
    let artifact = FailureArtifact {
        spec: shrunk.spec,
        crawler: crawler.to_owned(),
        seed,
        budget_minutes: shrunk.budget_minutes,
        violation: shrunk.violation,
        shrink_attempts: shrunk.attempts,
        faults: cfg.faults.clone(),
    };
    let path = cfg.out_dir.join(format!("failure-{}-{crawler}.json", outcome.failures.len()));
    std::fs::write(&path, serde_json::to_string_pretty(&artifact).expect("artifact serializes"))?;
    if cfg.progress {
        println!(
            "  shrunk to {} pages in {} attempts -> {}",
            artifact.spec.total_pages(),
            artifact.shrink_attempts,
            path.display()
        );
    }
    outcome.failures.push((path, artifact));
    Ok(())
}

/// Outcome of replaying one failure artifact.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The parsed artifact.
    pub artifact: FailureArtifact,
    /// The violation observed when re-running the artifact's cell, or
    /// `None` if the failure no longer reproduces (i.e. the bug is fixed).
    pub reproduced: Option<Violation>,
}

/// Replays a failure artifact written by [`run_fuzz`]. The detection path
/// is chosen from the recorded violation's invariant so differential
/// failures replay through the same oracle that found them.
pub fn replay(path: &std::path::Path) -> Result<ReplayOutcome, String> {
    let json =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let artifact: FailureArtifact =
        serde_json::from_str(&json).map_err(|e| format!("parse {}: {e}", path.display()))?;
    let reproduced = match artifact.violation.invariant.as_str() {
        "parallel-sequential" => detect_parallel_failure(
            &artifact.spec,
            artifact.budget_minutes,
            &artifact.faults,
            std::slice::from_ref(&artifact.crawler),
            artifact.seed,
        ),
        "cache-roundtrip" => detect_cache_failure(
            &artifact.spec,
            artifact.budget_minutes,
            &artifact.faults,
            &artifact.crawler,
            artifact.seed,
        ),
        _ => detect_step_failure(
            &artifact.spec,
            artifact.budget_minutes,
            &artifact.faults,
            &artifact.crawler,
            artifact.seed,
        ),
    };
    Ok(ReplayOutcome { artifact, reproduced })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_out(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mak-testkit-fuzz-{}-{tag}", std::process::id()))
    }

    #[test]
    fn bounded_smoke_run_is_clean() {
        let out = temp_out("smoke");
        let cfg = FuzzConfig {
            apps: 3,
            seeds: 1,
            crawlers: vec!["mak".into(), "bfs".into()],
            budget_minutes: 0.5,
            out_dir: out.clone(),
            ..FuzzConfig::default()
        };
        let outcome = run_fuzz(&cfg).unwrap();
        assert!(outcome.clean(), "{:?}", outcome.failures);
        assert_eq!(outcome.runs, 3 * 2);
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn artifact_roundtrips_and_replays() {
        // A healthy cell: replay must report "not reproduced".
        let artifact = FailureArtifact {
            spec: BlueprintSpec::generate(2),
            crawler: "mak".into(),
            seed: 1,
            budget_minutes: 0.5,
            violation: Violation {
                step: 3,
                invariant: "exp31-epoch-bound".into(),
                details: "synthetic".into(),
            },
            shrink_attempts: 0,
            faults: FaultPlan::none(),
        };
        let dir = temp_out("replay");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");
        std::fs::write(&path, serde_json::to_string_pretty(&artifact).unwrap()).unwrap();
        let outcome = replay(&path).unwrap();
        assert_eq!(outcome.artifact, artifact);
        assert!(outcome.reproduced.is_none(), "{:?}", outcome.reproduced);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_smoke_run_is_clean() {
        let out = temp_out("chaos");
        let cfg = FuzzConfig {
            apps: 3,
            seeds: 1,
            crawlers: vec!["mak".into(), "bfs".into()],
            budget_minutes: 0.5,
            out_dir: out.clone(),
            faults: FaultPlan::profile("moderate").unwrap(),
            ..FuzzConfig::default()
        };
        let outcome = run_fuzz(&cfg).unwrap();
        assert!(outcome.clean(), "chaos mode violates no invariant: {:?}", outcome.failures);
        assert_eq!(outcome.runs, 3 * 2);
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn pre_chaos_artifacts_parse_with_the_empty_plan() {
        use serde::{Deserialize, Serialize, Value};
        let artifact = FailureArtifact {
            spec: BlueprintSpec::generate(2),
            crawler: "mak".into(),
            seed: 1,
            budget_minutes: 0.5,
            violation: Violation {
                step: 3,
                invariant: "exp31-epoch-bound".into(),
                details: "synthetic".into(),
            },
            shrink_attempts: 0,
            faults: FaultPlan::profile("heavy").unwrap(),
        };
        // Simulate an artifact written before the fault layer existed by
        // stripping the `faults` field from the serialized form.
        let Value::Object(mut entries) = artifact.to_value() else { panic!("object") };
        entries.retain(|(k, _)| k != "faults");
        let parsed = FailureArtifact::from_value(&Value::Object(entries)).unwrap();
        assert_eq!(parsed.faults, FaultPlan::none(), "missing plan defaults to empty");
        assert_eq!(parsed.spec, artifact.spec);
    }

    #[test]
    fn replay_rejects_garbage() {
        let dir = temp_out("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(replay(&path).is_err());
        assert!(replay(&dir.join("missing.json")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
