//! Seeded generation of adversarial application blueprints.
//!
//! [`BlueprintSpec`] is the fuzzer's value domain: a plain-data,
//! serializable mirror of the websim [`Blueprint`] builder. Keeping the
//! spec as data (rather than building a [`BlueprintApp`] directly) buys
//! three things: specs can be *generated* from a seed, *shrunk* by
//! structural edits (drop a module, halve its pages), and *persisted* in
//! failure artifacts that replay bit-identically later.

use mak_websim::apps::blueprint::{Blueprint, BlueprintApp, ModuleKind, ModuleSpec};
use mak_websim::coverage::CoverageMode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A module kind, as plain serializable data. Mirrors
/// [`ModuleKind`] one variant for one variant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KindSpec {
    /// Hub topology: page 0 links to every other page.
    Hub,
    /// Chain topology: page `i` links to page `i + 1`.
    Chain,
    /// Heap-shaped tree.
    Tree {
        /// Children per page.
        branching: usize,
    },
    /// One path, pages selected by a `module=` query parameter.
    ParamDispatch,
    /// Ternary tree whose links carry redundant query parameters.
    Aliased {
        /// Distinct alias URLs per page.
        aliases: usize,
    },
    /// Near-empty archive pages, the depth-first trap.
    Pagination,
    /// A page whose element list grows broken links on every submission.
    MutatingTrap {
        /// Maximum accumulated broken links.
        max_links: usize,
    },
    /// A search form whose results never change.
    NoopSearch,
    /// A cart-style flow unlocking new code per accumulated session item.
    StatefulFlow {
        /// Distinct unlockable stages.
        stages: usize,
    },
    /// A creation form adding linked item pages up to a bound.
    ContentCreation {
        /// Maximum creatable items.
        max_items: usize,
    },
    /// Input-dependent validation branches.
    FormBranches {
        /// Distinct validation branches.
        branches: usize,
    },
    /// A login-gated area behind demo credentials.
    AuthArea,
}

impl KindSpec {
    /// Whether the kind compiles to a single-page widget module (all pages
    /// of such a module share one route, so multi-page specs would
    /// collide).
    fn single_page(&self) -> bool {
        matches!(
            self,
            KindSpec::MutatingTrap { .. }
                | KindSpec::NoopSearch
                | KindSpec::StatefulFlow { .. }
                | KindSpec::ContentCreation { .. }
                | KindSpec::FormBranches { .. }
        )
    }

    fn to_kind(&self) -> ModuleKind {
        match self {
            KindSpec::Hub => ModuleKind::Hub,
            KindSpec::Chain => ModuleKind::Chain,
            KindSpec::Tree { branching } => ModuleKind::Tree { branching: (*branching).max(2) },
            KindSpec::ParamDispatch => ModuleKind::ParamDispatch { param: "module".to_owned() },
            KindSpec::Aliased { aliases } => ModuleKind::Aliased { aliases: (*aliases).max(2) },
            KindSpec::Pagination => ModuleKind::Pagination,
            KindSpec::MutatingTrap { max_links } => {
                ModuleKind::MutatingTrap { max_links: (*max_links).max(1) }
            }
            KindSpec::NoopSearch => ModuleKind::NoopSearch,
            KindSpec::StatefulFlow { stages } => {
                ModuleKind::StatefulFlow { stages: (*stages).max(1) }
            }
            KindSpec::ContentCreation { max_items } => {
                ModuleKind::ContentCreation { max_items: (*max_items).max(1) }
            }
            KindSpec::FormBranches { branches } => {
                ModuleKind::FormBranches { branches: (*branches).max(1) }
            }
            KindSpec::AuthArea => ModuleKind::AuthArea,
        }
    }
}

/// One module of a [`BlueprintSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleDef {
    /// Module name (unique within the spec).
    pub name: String,
    /// Topology / behaviour.
    pub kind: KindSpec,
    /// Requested page count (clamped to 1 for single-page widget kinds).
    pub pages: usize,
    /// Mean handler lines per page.
    pub lines_per_page: u32,
}

impl ModuleDef {
    /// The page count the module will actually compile to.
    pub fn effective_pages(&self) -> usize {
        if self.kind.single_page() {
            1
        } else {
            self.pages.max(1)
        }
    }
}

/// A serializable blueprint: everything needed to rebuild one generated
/// application, bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlueprintSpec {
    /// Application name; also determines the host (`<name>.local`) and the
    /// blueprint compiler's internal layout seed.
    pub name: String,
    /// The modules, in compilation order.
    pub modules: Vec<ModuleDef>,
    /// Deterministic cross-module links.
    pub cross_links: usize,
    /// External-domain links on the home page.
    pub external_links: usize,
    /// WordPress-style `/r/<k>` redirect shortlinks.
    pub redirect_links: usize,
    /// Every n-th request 500s (None: no transient failures; values < 2
    /// are treated as None).
    pub flaky_every: Option<u64>,
    /// Shared controller/template code per module, in percent of the
    /// module's summed page lines (kept integral so specs serialize
    /// canonically).
    pub shared_ratio_pct: u32,
    /// Framework lines executed on every request.
    pub bootstrap_lines: u32,
    /// Live (Xdebug-style) vs final (coverage-node-style) observation.
    pub live_coverage: bool,
}

impl BlueprintSpec {
    /// Generates a random-but-seeded spec. The same seed always yields the
    /// same spec; different seeds explore module-kind combinations,
    /// topology sizes, and builder knobs (aliasing, dispatch, traps,
    /// stateful flows, transient failures, redirects).
    pub fn generate(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ SPEC_STREAM_TAG);
        let n_modules = rng.gen_range(1..=5usize);
        let mut modules = Vec::with_capacity(n_modules);
        for i in 0..n_modules {
            let (kind, pages) = match rng.gen_range(0..12u32) {
                0 => (KindSpec::Hub, rng.gen_range(2..=8)),
                1 => (KindSpec::Chain, rng.gen_range(2..=8)),
                2 => (KindSpec::Tree { branching: rng.gen_range(2..=4) }, rng.gen_range(3..=10)),
                3 => (KindSpec::ParamDispatch, rng.gen_range(2..=6)),
                4 => (KindSpec::Aliased { aliases: rng.gen_range(2..=4) }, rng.gen_range(3..=9)),
                5 => (KindSpec::Pagination, rng.gen_range(4..=12)),
                6 => (KindSpec::MutatingTrap { max_links: rng.gen_range(1..=6) }, 1),
                7 => (KindSpec::NoopSearch, 1),
                8 => (KindSpec::StatefulFlow { stages: rng.gen_range(1..=4) }, 1),
                9 => (KindSpec::ContentCreation { max_items: rng.gen_range(1..=5) }, 1),
                10 => (KindSpec::FormBranches { branches: rng.gen_range(1..=6) }, 1),
                _ => (KindSpec::AuthArea, rng.gen_range(2..=5)),
            };
            modules.push(ModuleDef {
                name: format!("m{i}"),
                kind,
                pages,
                lines_per_page: rng.gen_range(5..=60),
            });
        }
        BlueprintSpec {
            name: format!("fuzz{seed}"),
            modules,
            cross_links: rng.gen_range(0..=4),
            external_links: rng.gen_range(0..=2),
            redirect_links: rng.gen_range(0..=3),
            flaky_every: if rng.gen_bool(0.25) { Some(rng.gen_range(2..=7)) } else { None },
            shared_ratio_pct: [0, 50, 100, 200][rng.gen_range(0..4usize)],
            bootstrap_lines: rng.gen_range(5..=50),
            live_coverage: rng.gen_bool(0.75),
        }
    }

    /// Total routable pages the spec compiles to (home page included) —
    /// the size metric shrinking minimizes.
    pub fn total_pages(&self) -> usize {
        1 + self.modules.iter().map(ModuleDef::effective_pages).sum::<usize>()
    }

    /// Compiles the spec into a servable application. Building twice from
    /// the same spec yields identical applications (the blueprint compiler
    /// is seeded by the app name).
    pub fn build(&self) -> BlueprintApp {
        let mode = if self.live_coverage { CoverageMode::Live } else { CoverageMode::Final };
        let mut bp = Blueprint::new(self.name.clone(), format!("{}.local", self.name))
            .coverage_mode(mode)
            .bootstrap_lines(self.bootstrap_lines.max(1))
            .shared_ratio(f64::from(self.shared_ratio_pct.min(400)) / 100.0)
            .cross_links(self.cross_links)
            .external_links(self.external_links)
            .redirect_links(self.redirect_links);
        if let Some(n) = self.flaky_every {
            if n >= 2 {
                bp = bp.flaky_every(n);
            }
        }
        for m in &self.modules {
            bp = bp.module(ModuleSpec::new(
                m.name.clone(),
                m.kind.to_kind(),
                m.effective_pages(),
                m.lines_per_page.max(2),
            ));
        }
        bp.build()
    }
}

/// A fixed tag mixed into generation seeds so spec streams are decoupled
/// from other consumers of small consecutive seeds.
const SPEC_STREAM_TAG: u64 = 0x9e37_79b9_7f4a_7c15;

#[cfg(test)]
mod tests {
    use super::*;
    use mak_websim::server::WebApp;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..50 {
            assert_eq!(BlueprintSpec::generate(seed), BlueprintSpec::generate(seed));
        }
    }

    #[test]
    fn seeds_explore_different_shapes() {
        let distinct: std::collections::BTreeSet<String> =
            (0..100).map(|s| format!("{:?}", BlueprintSpec::generate(s).modules)).collect();
        assert!(distinct.len() > 80, "only {} distinct module sets", distinct.len());
    }

    #[test]
    fn every_generated_spec_builds() {
        for seed in 0..100 {
            let spec = BlueprintSpec::generate(seed);
            let app = spec.build();
            assert_eq!(app.page_count(), spec.total_pages(), "seed {seed}");
            assert!(app.code_model().total_lines() > 0);
        }
    }

    #[test]
    fn build_twice_is_identical() {
        let spec = BlueprintSpec::generate(7);
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.page_count(), b.page_count());
        assert_eq!(a.code_model().total_lines(), b.code_model().total_lines());
    }

    #[test]
    fn spec_json_roundtrips() {
        for seed in [0, 3, 11, 42] {
            let spec = BlueprintSpec::generate(seed);
            let json = serde_json::to_string(&spec).unwrap();
            let back: BlueprintSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn widget_kinds_stay_single_page() {
        let spec = BlueprintSpec {
            name: "w".into(),
            modules: vec![ModuleDef {
                name: "trap".into(),
                kind: KindSpec::MutatingTrap { max_links: 3 },
                pages: 9,
                lines_per_page: 10,
            }],
            cross_links: 0,
            external_links: 0,
            redirect_links: 0,
            flaky_every: None,
            shared_ratio_pct: 100,
            bootstrap_lines: 10,
            live_coverage: true,
        };
        assert_eq!(spec.total_pages(), 2);
        assert_eq!(spec.build().page_count(), 2);
    }
}
