//! `mak-testkit` — seeded property-testing, invariant-oracle, and
//! differential-fuzzing harness for the MAK reproduction.
//!
//! The crate answers one question: *does every crawler preserve its
//! invariants on applications nobody hand-wrote?* It has four layers:
//!
//! 1. [`generate`] — [`generate::BlueprintSpec`], a serializable mirror of
//!    the websim [blueprint DSL](mak_websim::apps::blueprint) that can be
//!    generated from a seed (aliased URLs, query-param dispatch,
//!    DOM-mutation traps, stateful flows, …), built into a servable app,
//!    and — crucially for shrinking — edited structurally.
//! 2. [`oracle`] — [`oracle::InvariantOracle`], an observability
//!    [`EventSink`](mak_obs::sink::EventSink) that checks invariants over
//!    the event stream of a crawl: clock/coverage/URL-count monotonicity,
//!    URL-normalization idempotence, leveled-deque consistency, reward
//!    range, and Exp3.1 distribution validity (simplex, exploration
//!    floor, finite weights, epoch-termination bound).
//! 3. [`differential`] — cross-run oracles: bit-identical reruns per seed,
//!    cached ≡ fresh through the [`RunStore`](mak_metrics::store::RunStore),
//!    and parallel ≡ sequential execution.
//! 4. [`fuzz`] + [`shrink`] — the driver behind `mak-cli fuzz`: generate
//!    apps, run every crawler under the oracles, and shrink any failure by
//!    deterministic bisection (drop modules → bisect pages → strip knobs →
//!    bisect budget) down to a minimal reproducing blueprint written to
//!    disk and replayable with `mak-cli fuzz --replay <file>`.
//!
//! Everything is deterministic: the same seed always generates the same
//! application, the same crawl, the same violation, and the same shrunk
//! artifact.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod differential;
pub mod fuzz;
pub mod generate;
pub mod oracle;
pub mod shrink;
