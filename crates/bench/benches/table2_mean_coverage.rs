//! Table II benchmark: cost of one estimated-mean-coverage computation —
//! running a crawler cell and folding its covered lines into the union
//! ground truth of §V-B.

use criterion::{criterion_group, criterion_main, Criterion};
use mak::framework::engine::{run_crawl, EngineConfig};
use mak::spec::build_crawler;
use mak_metrics::ground_truth::UnionCoverage;
use mak_websim::apps;
use std::hint::black_box;

fn bench_union_fold(c: &mut Criterion) {
    // Precompute a batch of reports once; benchmark the union estimation.
    let cfg = EngineConfig::with_budget_minutes(5.0);
    let reports: Vec<_> = ["mak", "webexplor", "qexplore"]
        .iter()
        .map(|name| {
            let mut cr = build_crawler(name, 3).expect("known crawler");
            run_crawl(&mut *cr, apps::build("vanilla").unwrap(), &cfg, 3)
        })
        .collect();

    c.bench_function("table2_union_ground_truth_vanilla", |b| {
        b.iter(|| {
            let union = UnionCoverage::from_reports(reports.iter());
            let cov = union.coverage_of(&reports[0]);
            black_box((union.len(), cov))
        });
    });
}

fn bench_table2_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_cell");
    group.sample_size(15);
    group.bench_function("mak_on_oscommerce2_5min", |b| {
        let cfg = EngineConfig::with_budget_minutes(5.0);
        b.iter(|| {
            let mut cr = build_crawler("mak", 11).expect("known crawler");
            let r = run_crawl(&mut *cr, apps::build("oscommerce2").unwrap(), &cfg, 11);
            black_box(r.final_lines_covered)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_union_fold, bench_table2_cell);
criterion_main!(benches);
