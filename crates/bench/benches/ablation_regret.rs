//! §V-C ablation benchmark: one static-strategy cell (the unit the full
//! `ablation` binary fans out over four crawlers × eleven apps × seeds) and
//! the regret aggregation itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mak::framework::engine::{run_crawl, EngineConfig};
use mak::spec::build_crawler;
use mak_metrics::regret::{cumulative_regret, AppOutcome};
use mak_websim::apps;
use std::collections::BTreeMap;
use std::hint::black_box;

fn bench_static_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cell_vanilla_5min");
    group.sample_size(15);
    for crawler in ["mak", "bfs", "dfs", "random"] {
        group.bench_with_input(BenchmarkId::from_parameter(crawler), &crawler, |b, &name| {
            let cfg = EngineConfig::with_budget_minutes(5.0);
            b.iter(|| {
                let mut cr = build_crawler(name, 5).expect("known crawler");
                let r = run_crawl(&mut *cr, apps::build("vanilla").unwrap(), &cfg, 5);
                black_box(r.final_lines_covered)
            });
        });
    }
    group.finish();
}

fn bench_regret_aggregation(c: &mut Criterion) {
    let outcomes: Vec<AppOutcome> = (0..11)
        .map(|i| {
            let mut runs = BTreeMap::new();
            for (j, name) in ["mak", "bfs", "dfs", "random"].iter().enumerate() {
                runs.insert(
                    (*name).to_owned(),
                    (0..10).map(|s| 1_000.0 + (i * 37 + j * 113 + s * 7) as f64).collect(),
                );
            }
            AppOutcome::from_runs(format!("app{i}"), &runs, 50_000.0)
        })
        .collect();
    c.bench_function("cumulative_regret_11_apps", |b| {
        b.iter(|| black_box(cumulative_regret(&outcomes)));
    });
}

criterion_group!(benches, bench_static_cells, bench_regret_aggregation);
criterion_main!(benches);
