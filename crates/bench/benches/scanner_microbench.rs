//! Scanner benchmarks: surface absorption per page and a full
//! crawl-then-probe scan cell (the §VII integration extension).

use criterion::{criterion_group, criterion_main, Criterion};
use mak_browser::client::Browser;
use mak_browser::clock::VirtualClock;
use mak_scanner::scan::{run_scan, ScanConfig};
use mak_scanner::surface::AttackSurface;
use mak_websim::apps;
use mak_websim::server::AppHost;
use std::hint::black_box;

fn bench_surface_absorption(c: &mut Criterion) {
    // A representative content page with links and a form.
    let host = AppHost::new(apps::build("wordpress").unwrap());
    let mut browser = Browser::new(host, VirtualClock::with_budget_minutes(30.0), 1);
    let page = browser.open_seed().expect("seed renders");
    let origin = browser.origin().clone();

    c.bench_function("surface_absorb_page", |b| {
        let mut surface = AttackSurface::new();
        b.iter(|| {
            surface.absorb_page(&page, &origin);
            black_box(surface.endpoint_count())
        });
    });
}

fn bench_scan_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_cell_vanilla");
    group.sample_size(10);
    group.bench_function("mak_2min_crawl_1min_probe", |b| {
        let cfg = ScanConfig::with_minutes(2.0, 1.0);
        b.iter(|| {
            let report = run_scan("mak", "vanilla", &cfg, 3).expect("known names");
            black_box((report.surface.endpoint_count(), report.findings.len()))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_surface_absorption, bench_scan_cell);
criterion_main!(benches);
