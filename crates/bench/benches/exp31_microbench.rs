//! Microbenchmarks for the policy-learning primitives: Exp3.1 choose/update
//! cycles (MAK's per-decision cost is O(K) — the "stateless" speed claim),
//! Gumbel-softmax sampling, and the standardized-reward transform.

use criterion::{criterion_group, criterion_main, Criterion};
use mak_bandit::exp31::Exp31;
use mak_bandit::gumbel::gumbel_softmax_sample;
use mak_bandit::normalize::StandardizedReward;
use mak_bandit::policy::BanditPolicy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_exp31(c: &mut Criterion) {
    c.bench_function("exp31_choose_update", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let mut bandit = Exp31::new(3);
        b.iter(|| {
            let arm = bandit.choose(&mut rng);
            bandit.update(arm, black_box(0.6));
            black_box(arm)
        });
    });
}

fn bench_gumbel(c: &mut Criterion) {
    c.bench_function("gumbel_softmax_sample_16", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let values: Vec<f64> = (0..16).map(|i| i as f64 / 16.0).collect();
        b.iter(|| black_box(gumbel_softmax_sample(&mut rng, &values, 0.2)));
    });
}

fn bench_reward(c: &mut Criterion) {
    c.bench_function("standardized_reward_transform", |b| {
        let mut sr = StandardizedReward::new();
        let mut x = 0.0;
        b.iter(|| {
            x += 1.0;
            black_box(sr.transform(x % 17.0))
        });
    });
}

criterion_group!(benches, bench_exp31, bench_gumbel, bench_reward);
criterion_main!(benches);
