//! Fig. 1 benchmark: the cost of the baselines' state abstractions as the
//! state table grows — the mechanism behind the §V-D interaction-count gap.
//! WebExplor's similarity scan is benchmarked against stores pre-seeded with
//! alias-generated states; QExplore's hash lookup stays flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mak::framework::qcrawler::StateAbstraction;
use mak::qexplore::QExploreState;
use mak::webexplor::WebExplorState;
use mak_browser::page::Page;
use mak_websim::dom::{Document, Element, Tag};
use mak_websim::http::Status;
use std::hint::black_box;

fn page(url: &str, divs: usize) -> Page {
    let mut body = Element::new(Tag::Body);
    for i in 0..divs {
        body = body.child(
            Element::new(Tag::Div).child(Element::new(Tag::A).attr("href", format!("/l{i}"))),
        );
    }
    Page::from_document(Status::Ok, Document::new(url.parse().unwrap(), "t", body))
}

fn bench_webexplor_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("webexplor_state_lookup");
    for &n_states in &[10usize, 100, 500] {
        // Pre-seed with alias states (distinct URLs of the same page shape).
        let mut store = WebExplorState::new();
        for i in 0..n_states {
            store.state_of(&page(&format!("http://h/p?r={i}"), 20));
        }
        let probe = page("http://h/p?r=0", 20);
        group.bench_with_input(BenchmarkId::from_parameter(n_states), &n_states, |b, _| {
            b.iter(|| black_box(store.state_of(&probe)));
        });
    }
    group.finish();
}

fn bench_qexplore_lookup(c: &mut Criterion) {
    c.bench_function("qexplore_state_lookup_500", |b| {
        let mut store = QExploreState::new();
        for i in 0..500 {
            store.state_of(&page(&format!("http://h/p{i}"), (i % 7) + 1));
        }
        let probe = page("http://h/p0", 1);
        b.iter(|| black_box(store.state_of(&probe)));
    });
}

criterion_group!(benches, bench_webexplor_lookup, bench_qexplore_lookup);
criterion_main!(benches);
