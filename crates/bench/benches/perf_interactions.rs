//! §V-D benchmark: raw per-step cost of each crawler against a live
//! application — the engine-level difference that produces the paper's
//! interaction-count spread (MAK 883 vs WebExplor 854 vs QExplore 827).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mak::spec::build_crawler;
use mak_browser::client::Browser;
use mak_browser::clock::VirtualClock;
use mak_websim::apps;
use mak_websim::server::AppHost;
use std::hint::black_box;

fn bench_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("crawler_step_drupal");
    group.sample_size(10);
    for crawler in ["mak", "webexplor", "qexplore", "bfs"] {
        group.bench_with_input(BenchmarkId::from_parameter(crawler), &crawler, |b, &name| {
            b.iter(|| {
                let host = AppHost::new(apps::build("drupal").unwrap());
                let mut browser = Browser::new(host, VirtualClock::with_budget_minutes(30.0), 13);
                let mut cr = build_crawler(name, 13).expect("known crawler");
                // 200 decision+interaction steps.
                for _ in 0..200 {
                    if cr.step(&mut browser).is_err() {
                        break;
                    }
                }
                black_box(browser.interaction_count())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_steps);
criterion_main!(benches);
