//! Fig. 2 benchmark: wall-clock cost of regenerating one coverage-over-time
//! cell (one crawler, one PHP application, one seeded run with live
//! sampling) — the unit the full `fig2` binary fans out 240×.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mak::framework::engine::{run_crawl, EngineConfig};
use mak::spec::build_crawler;
use mak_websim::apps;
use std::hint::black_box;

fn bench_fig2_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_cell_phpbb2_5min");
    group.sample_size(20);
    for crawler in ["mak", "webexplor", "qexplore"] {
        group.bench_with_input(BenchmarkId::from_parameter(crawler), &crawler, |b, &name| {
            let cfg = EngineConfig::with_budget_minutes(5.0);
            b.iter(|| {
                let mut cr = build_crawler(name, 7).expect("known crawler");
                let report = run_crawl(&mut *cr, apps::build("phpbb2").unwrap(), &cfg, 7);
                assert!(!report.coverage_series.is_empty());
                black_box(report.final_lines_covered)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2_cell);
criterion_main!(benches);
