//! The coverage/perf regression gate behind the `regress` binary.
//!
//! A bench matrix is folded into a [`CoverageBench`] — per-(app, crawler)
//! mean final coverage and interactions, per-crawler cumulative regret
//! (§V-C), and a steps/sec envelope from the fresh (non-cached) cells.
//! The deterministic part of that document (everything except the perf
//! envelope) is compared against a committed [`Baselines`] file with
//! per-metric tolerances; any finding is a regression and the binary
//! exits non-zero.
//!
//! Determinism split: coverage, interactions and regret are pure
//! functions of `(app, crawler, seed, config)` and gate hard. Wall-clock
//! time is run-dependent, so the perf envelope is recorded in
//! `results/BENCH_coverage.json` for inspection but never gated on its
//! own; per-app steps/sec is gated *softly* against blessed floors with a
//! generous fractional tolerance (default 0.5×), so only an
//! order-of-magnitude slowdown — a lost optimization, not scheduler noise
//! — trips the gate.
//!
//! The vendored serde derives neither attributes nor map types, so every
//! persisted collection here is a `Vec` of named-field structs sorted on
//! its natural key.

use mak::framework::engine::CrawlReport;
use mak_metrics::regret::{cumulative_regret, AppOutcome};
use mak_metrics::stats::mean;
use mak_obs::event::Event;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The identity of a gate run: baselines are only comparable against a
/// matrix produced under the same knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateConfig {
    /// Seeds per (app, crawler) pair.
    pub seeds: u64,
    /// Virtual budget per run, minutes.
    pub budget_minutes: f64,
}

/// One matrix cell's inputs to the gate — the deterministic outcome of a
/// single run.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Application name.
    pub app: String,
    /// Crawler name.
    pub crawler: String,
    /// Lines covered at the end of the run.
    pub lines: u64,
    /// Element interactions performed.
    pub interactions: u64,
    /// The app's declared total lines (regret denominator).
    pub total_lines: u64,
}

impl From<&CrawlReport> for CellResult {
    fn from(r: &CrawlReport) -> Self {
        CellResult {
            app: r.app.clone(),
            crawler: r.crawler.clone(),
            lines: r.final_lines_covered,
            interactions: r.interactions,
            total_lines: r.total_declared_lines,
        }
    }
}

/// Seed-averaged outcome of one (app, crawler) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairMetrics {
    /// Application name.
    pub app: String,
    /// Crawler name.
    pub crawler: String,
    /// Mean final lines covered over the seeds.
    pub mean_lines: f64,
    /// Mean interactions over the seeds.
    pub mean_interactions: f64,
}

/// One crawler's cumulative regret over the matrix's applications, in
/// percentage points of each app's declared total lines (§V-C, but with
/// the deterministic declared-lines denominator instead of the union
/// ground truth, which is unstable at gate-sized seed counts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrawlerRegret {
    /// Crawler name.
    pub crawler: String,
    /// Cumulative regret, percentage points.
    pub cumulative_pct: f64,
}

/// Wall-clock throughput of the fresh (non-cached) cells. Recorded for
/// inspection; never gated — wall time is not deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfEnvelope {
    /// Cells actually executed this run (cache misses).
    pub fresh_cells: u64,
    /// Mean wall-clock milliseconds per fresh cell.
    pub mean_wall_ms: f64,
    /// Mean interactions per wall-clock second over fresh cells.
    pub mean_steps_per_sec: f64,
}

/// Mean throughput of one application's fresh cells, in steps
/// (interactions) per wall-clock second. Apps with no fresh cells in a
/// run have no entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppPerf {
    /// Application name.
    pub app: String,
    /// Mean interactions per wall-clock second over the app's fresh cells.
    pub mean_steps_per_sec: f64,
}

/// The `results/BENCH_coverage.json` document: one bench matrix folded
/// into gateable metrics plus the advisory perf envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageBench {
    /// The knobs the matrix ran under.
    pub config: GateConfig,
    /// Per-(app, crawler) means, sorted by (app, crawler).
    pub pairs: Vec<PairMetrics>,
    /// Per-crawler cumulative regret, sorted ascending (best first).
    pub regret: Vec<CrawlerRegret>,
    /// Advisory wall-clock envelope.
    pub perf: PerfEnvelope,
    /// Per-app fresh-cell throughput, sorted by app; compared against the
    /// blessed [`Baselines::perf_floors`].
    pub app_perf: Vec<AppPerf>,
}

/// Per-metric slack for [`compare`]. The workspace is bit-deterministic,
/// so drift only appears when code changes; the tolerances say how much
/// of it is acceptable without re-blessing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tolerances {
    /// Allowed *drop* in mean lines, relative (gains never gate).
    pub coverage_drop_rel: f64,
    /// Allowed change in mean interactions, relative, symmetric.
    pub interactions_rel: f64,
    /// Allowed change in cumulative regret, absolute percentage points.
    pub regret_abs_pct: f64,
    /// Fraction of a blessed per-app steps/sec floor a run may fall to
    /// before gating. Deliberately generous (0.5×): wall-clock throughput
    /// varies with the machine, so only losing half the blessed speed —
    /// a regressed hot path, not noise — counts.
    pub steps_per_sec_frac: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            coverage_drop_rel: 0.05,
            interactions_rel: 0.10,
            regret_abs_pct: 5.0,
            steps_per_sec_frac: 0.5,
        }
    }
}

/// The committed `results/baselines.json`: the deterministic half of a
/// blessed [`CoverageBench`] plus the tolerances to compare under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Baselines {
    /// The knobs the blessed matrix ran under.
    pub config: GateConfig,
    /// Comparison slack.
    pub tolerances: Tolerances,
    /// Blessed per-pair means.
    pub pairs: Vec<PairMetrics>,
    /// Blessed per-crawler cumulative regret.
    pub regret: Vec<CrawlerRegret>,
    /// Blessed per-app steps/sec floors, sorted by app. Compared at
    /// [`Tolerances::steps_per_sec_frac`] of the floor; apps with no
    /// fresh cells in a gate run are skipped (cached cells carry no
    /// wall-clock signal).
    pub perf_floors: Vec<PerfFloor>,
}

/// One blessed throughput floor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfFloor {
    /// Application name.
    pub app: String,
    /// Blessed mean steps/sec over the app's fresh cells.
    pub steps_per_sec: f64,
}

impl Baselines {
    /// Blesses a fresh bench as the new baseline. The aggregate perf
    /// envelope is dropped (not deterministic); the per-app steps/sec
    /// means become the blessed floors.
    pub fn from_bench(bench: &CoverageBench, tolerances: Tolerances) -> Self {
        Baselines {
            config: bench.config.clone(),
            tolerances,
            pairs: bench.pairs.clone(),
            regret: bench.regret.clone(),
            perf_floors: bench
                .app_perf
                .iter()
                .map(|p| PerfFloor { app: p.app.clone(), steps_per_sec: p.mean_steps_per_sec })
                .collect(),
        }
    }
}

/// Folds matrix results plus the bench-side `CellFinished` stream into a
/// [`CoverageBench`]. `cells` may be empty (no perf envelope recorded).
pub fn measure<'a>(
    results: impl IntoIterator<Item = CellResult>,
    cells: impl IntoIterator<Item = &'a Event>,
    config: GateConfig,
) -> CoverageBench {
    /// Per-pair accumulator: per-seed lines and interactions, plus the
    /// app's declared total (the regret denominator).
    type PairRuns = (Vec<f64>, Vec<f64>, u64);
    let mut grouped: BTreeMap<(String, String), PairRuns> = BTreeMap::new();
    for cell in results {
        let entry = grouped
            .entry((cell.app, cell.crawler))
            .or_insert_with(|| (Vec::new(), Vec::new(), cell.total_lines));
        entry.0.push(cell.lines as f64);
        entry.1.push(cell.interactions as f64);
    }
    let pairs: Vec<PairMetrics> = grouped
        .iter()
        .map(|((app, crawler), (lines, interactions, _))| PairMetrics {
            app: app.clone(),
            crawler: crawler.clone(),
            mean_lines: mean(lines),
            mean_interactions: mean(interactions),
        })
        .collect();

    // Regroup per app for the regret computation.
    let mut per_app: BTreeMap<String, (BTreeMap<String, Vec<f64>>, u64)> = BTreeMap::new();
    for ((app, crawler), (lines, _, total)) in &grouped {
        let entry = per_app.entry(app.clone()).or_insert_with(|| (BTreeMap::new(), *total));
        entry.0.insert(crawler.clone(), lines.clone());
    }
    let outcomes: Vec<AppOutcome> = per_app
        .iter()
        .map(|(app, (runs, total))| AppOutcome::from_runs(app.clone(), runs, *total as f64))
        .collect();
    let regret: Vec<CrawlerRegret> = cumulative_regret(&outcomes)
        .into_iter()
        .map(|(crawler, cumulative_pct)| CrawlerRegret { crawler, cumulative_pct })
        .collect();

    let mut fresh = 0u64;
    let mut wall = Vec::new();
    let mut rate = Vec::new();
    let mut app_rates: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for event in cells {
        if let Event::CellFinished { app, wall_ms, interactions, cached: false, .. } = event {
            fresh += 1;
            wall.push(*wall_ms);
            if *wall_ms > 0.0 {
                let r = *interactions as f64 / (*wall_ms / 1000.0);
                rate.push(r);
                app_rates.entry(app.as_str()).or_default().push(r);
            }
        }
    }
    let perf = PerfEnvelope {
        fresh_cells: fresh,
        mean_wall_ms: if wall.is_empty() { 0.0 } else { mean(&wall) },
        mean_steps_per_sec: if rate.is_empty() { 0.0 } else { mean(&rate) },
    };
    let app_perf: Vec<AppPerf> = app_rates
        .iter()
        .map(|(app, rates)| AppPerf { app: (*app).to_owned(), mean_steps_per_sec: mean(rates) })
        .collect();

    CoverageBench { config, pairs, regret, perf, app_perf }
}

/// One gate finding, already formatted for display.
pub type Regression = String;

/// Compares a fresh bench against committed baselines.
///
/// `Err` means the two are not comparable at all (different matrix knobs
/// — re-bless rather than chase phantom diffs); `Ok(findings)` is the
/// list of regressions, empty when the gate passes.
pub fn compare(current: &CoverageBench, base: &Baselines) -> Result<Vec<Regression>, String> {
    if current.config != base.config {
        return Err(format!(
            "baseline config mismatch: baselines.json was blessed with seeds={} \
             budget_minutes={} but this run used seeds={} budget_minutes={}; \
             re-bless with `regress --bless` under matching knobs",
            base.config.seeds,
            base.config.budget_minutes,
            current.config.seeds,
            current.config.budget_minutes,
        ));
    }
    let tol = &base.tolerances;
    let mut findings = Vec::new();

    let cur_pairs: BTreeMap<(&str, &str), &PairMetrics> =
        current.pairs.iter().map(|p| ((p.app.as_str(), p.crawler.as_str()), p)).collect();
    let base_pairs: BTreeMap<(&str, &str), &PairMetrics> =
        base.pairs.iter().map(|p| ((p.app.as_str(), p.crawler.as_str()), p)).collect();

    for (key, b) in &base_pairs {
        let Some(c) = cur_pairs.get(key) else {
            findings.push(format!(
                "pair {}/{} present in baselines but missing from this run",
                key.0, key.1
            ));
            continue;
        };
        let floor = b.mean_lines * (1.0 - tol.coverage_drop_rel);
        if c.mean_lines < floor {
            findings.push(format!(
                "coverage regression on {}/{}: mean lines {:.1} < {:.1} \
                 (baseline {:.1}, tolerance -{}%)",
                b.app,
                b.crawler,
                c.mean_lines,
                floor,
                b.mean_lines,
                100.0 * tol.coverage_drop_rel,
            ));
        }
        if (c.mean_interactions - b.mean_interactions).abs()
            > tol.interactions_rel * b.mean_interactions
        {
            findings.push(format!(
                "interaction drift on {}/{}: mean {:.1} vs baseline {:.1} (tolerance ±{}%)",
                b.app,
                b.crawler,
                c.mean_interactions,
                b.mean_interactions,
                100.0 * tol.interactions_rel,
            ));
        }
    }
    for key in cur_pairs.keys() {
        if !base_pairs.contains_key(key) {
            findings.push(format!(
                "pair {}/{} is new (not in baselines); re-bless to admit it",
                key.0, key.1
            ));
        }
    }

    // Soft throughput floors: only apps with fresh cells this run carry a
    // wall-clock signal; cached cells are skipped, and gains never gate.
    let cur_perf: BTreeMap<&str, f64> =
        current.app_perf.iter().map(|p| (p.app.as_str(), p.mean_steps_per_sec)).collect();
    for f in &base.perf_floors {
        if let Some(&measured) = cur_perf.get(f.app.as_str()) {
            let floor = f.steps_per_sec * tol.steps_per_sec_frac;
            if measured < floor {
                findings.push(format!(
                    "throughput regression on {}: {:.0} steps/sec < {:.0} \
                     (blessed floor {:.0} × tolerance {})",
                    f.app, measured, floor, f.steps_per_sec, tol.steps_per_sec_frac,
                ));
            }
        }
    }

    let base_regret: BTreeMap<&str, f64> =
        base.regret.iter().map(|r| (r.crawler.as_str(), r.cumulative_pct)).collect();
    for r in &current.regret {
        match base_regret.get(r.crawler.as_str()) {
            None => findings.push(format!(
                "crawler {} has no blessed regret baseline; re-bless to admit it",
                r.crawler
            )),
            Some(b) if (r.cumulative_pct - b).abs() > tol.regret_abs_pct => {
                findings.push(format!(
                    "regret drift for {}: {:.1} vs baseline {:.1} (tolerance ±{:.1} points)",
                    r.crawler, r.cumulative_pct, b, tol.regret_abs_pct,
                ));
            }
            Some(_) => {}
        }
    }

    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(app: &str, crawler: &str, lines: u64, interactions: u64) -> CellResult {
        CellResult {
            app: app.into(),
            crawler: crawler.into(),
            lines,
            interactions,
            total_lines: 1_000,
        }
    }

    fn config() -> GateConfig {
        GateConfig { seeds: 2, budget_minutes: 5.0 }
    }

    fn bench() -> CoverageBench {
        measure(
            vec![
                cell("a", "mak", 900, 100),
                cell("a", "mak", 920, 104),
                cell("a", "bfs", 700, 90),
                cell("a", "bfs", 700, 90),
                cell("b", "mak", 500, 60),
                cell("b", "mak", 500, 60),
                cell("b", "bfs", 550, 70),
                cell("b", "bfs", 550, 70),
            ],
            [],
            config(),
        )
    }

    #[test]
    fn measure_averages_and_ranks_regret() {
        let b = bench();
        assert_eq!(b.pairs.len(), 4);
        let mak_a = b.pairs.iter().find(|p| p.app == "a" && p.crawler == "mak").unwrap();
        assert_eq!(mak_a.mean_lines, 910.0);
        assert_eq!(mak_a.mean_interactions, 102.0);
        // mak: 0 on a, 5 points on b; bfs: 21 points on a, 0 on b.
        assert_eq!(b.regret[0].crawler, "mak");
        assert!((b.regret[0].cumulative_pct - 5.0).abs() < 1e-9);
        assert_eq!(b.regret[1].crawler, "bfs");
        assert!((b.regret[1].cumulative_pct - 21.0).abs() < 1e-9);
        assert_eq!(b.perf.fresh_cells, 0, "no CellFinished events supplied");
    }

    #[test]
    fn perf_envelope_counts_only_fresh_cells() {
        let mk = |cached, wall_ms| Event::CellFinished {
            app: "a".into(),
            crawler: "mak".into(),
            seed: 0,
            wall_ms,
            virtual_secs: 300.0,
            interactions: 100,
            cached,
        };
        let events = [mk(false, 20.0), mk(true, 0.1), mk(false, 40.0)];
        let b = measure(vec![cell("a", "mak", 1, 1)], events.iter(), config());
        assert_eq!(b.perf.fresh_cells, 2);
        assert!((b.perf.mean_wall_ms - 30.0).abs() < 1e-9);
    }

    #[test]
    fn identical_bench_passes_the_gate() {
        let b = bench();
        let base = Baselines::from_bench(&b, Tolerances::default());
        assert_eq!(compare(&b, &base), Ok(vec![]));
    }

    #[test]
    fn coverage_drop_beyond_tolerance_is_a_regression() {
        let b = bench();
        let base = Baselines::from_bench(&b, Tolerances::default());
        let mut worse = b.clone();
        worse.pairs[0].mean_lines *= 0.90; // 10% drop > 5% tolerance
        let findings = compare(&worse, &base).unwrap();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("coverage regression"), "{findings:?}");
        // A drop inside the tolerance passes.
        let mut ok = b.clone();
        ok.pairs[0].mean_lines *= 0.97;
        assert_eq!(compare(&ok, &base), Ok(vec![]));
        // A gain never gates.
        let mut better = b.clone();
        better.pairs[0].mean_lines *= 1.50;
        assert_eq!(compare(&better, &base), Ok(vec![]));
    }

    #[test]
    fn interaction_drift_is_symmetric() {
        let b = bench();
        let base = Baselines::from_bench(&b, Tolerances::default());
        let mut drift = b.clone();
        drift.pairs[0].mean_interactions *= 1.20; // +20% > ±10%
        let findings = compare(&drift, &base).unwrap();
        assert!(findings.iter().any(|f| f.contains("interaction drift")), "{findings:?}");
    }

    #[test]
    fn regret_drift_beyond_absolute_tolerance_is_caught() {
        let b = bench();
        let base = Baselines::from_bench(&b, Tolerances::default());
        let mut drift = b.clone();
        drift.regret[1].cumulative_pct += 6.0; // > 5 points
        let findings = compare(&drift, &base).unwrap();
        assert!(findings.iter().any(|f| f.contains("regret drift")), "{findings:?}");
    }

    #[test]
    fn shape_changes_are_regressions_and_config_changes_are_errors() {
        let b = bench();
        let base = Baselines::from_bench(&b, Tolerances::default());
        let mut missing = b.clone();
        missing.pairs.remove(0);
        let findings = compare(&missing, &base).unwrap();
        assert!(findings.iter().any(|f| f.contains("missing from this run")), "{findings:?}");

        let mut extra = b.clone();
        extra.pairs.push(PairMetrics {
            app: "z".into(),
            crawler: "mak".into(),
            mean_lines: 1.0,
            mean_interactions: 1.0,
        });
        let findings = compare(&extra, &base).unwrap();
        assert!(findings.iter().any(|f| f.contains("is new")), "{findings:?}");

        let mut other = b.clone();
        other.config.seeds = 10;
        let err = compare(&other, &base).unwrap_err();
        assert!(err.contains("re-bless"), "{err}");
    }

    #[test]
    fn throughput_floors_gate_at_half_the_blessed_rate() {
        let mk = |app: &str, wall_ms| Event::CellFinished {
            app: app.into(),
            crawler: "mak".into(),
            seed: 0,
            wall_ms,
            virtual_secs: 300.0,
            interactions: 1_000,
            cached: false,
        };
        let events = [mk("a", 10.0), mk("b", 10.0)]; // 100k steps/sec each
        let b =
            measure(vec![cell("a", "mak", 1, 1), cell("b", "mak", 1, 1)], events.iter(), config());
        assert_eq!(b.app_perf.len(), 2);
        let base = Baselines::from_bench(&b, Tolerances::default());
        assert_eq!(base.perf_floors.len(), 2);

        // Same speed passes; 60% of the floor passes (tolerance is 0.5×).
        assert_eq!(compare(&b, &base), Ok(vec![]));
        let mut slower = b.clone();
        slower.app_perf[0].mean_steps_per_sec *= 0.6;
        assert_eq!(compare(&slower, &base), Ok(vec![]));

        // 40% of the floor gates.
        let mut regressed = b.clone();
        regressed.app_perf[0].mean_steps_per_sec *= 0.4;
        let findings = compare(&regressed, &base).unwrap();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("throughput regression on a"), "{findings:?}");

        // An app with no fresh cells this run is skipped, not failed.
        let mut cached_run = b.clone();
        cached_run.app_perf.retain(|p| p.app != "a");
        assert_eq!(compare(&cached_run, &base), Ok(vec![]));
    }

    #[test]
    fn bench_and_baselines_round_trip_through_json() {
        let b = bench();
        let json = serde_json::to_string(&b).unwrap();
        let back: CoverageBench = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
        let base = Baselines::from_bench(&b, Tolerances::default());
        let json = serde_json::to_string(&base).unwrap();
        let back: Baselines = serde_json::from_str(&json).unwrap();
        assert_eq!(back, base);
    }
}
