//! # mak-bench — the harness regenerating every table and figure
//!
//! One binary per experiment (see `DESIGN.md` §3 for the index):
//!
//! | binary    | paper artifact | content |
//! |-----------|----------------|---------|
//! | `fig1`    | Fig. 1         | state-abstraction failure demos |
//! | `table1`  | Table I        | crawler component summary |
//! | `fig2`    | Fig. 2         | coverage over time, 8 PHP apps × 3 crawlers |
//! | `table2`  | Table II       | estimated mean coverage, 11 apps |
//! | `ablation`| §V-C           | cumulative regret MAK/BFS/DFS/Random |
//! | `ablation2`| extension     | design-choice ablations (policies, rewards, pool) |
//! | `perf`    | §V-D           | mean interacted elements per run |
//! | `sweep`   | extension      | coverage vs crawl budget |
//! | `faults`  | extension      | coverage + resilience vs injected fault rate |
//! | `regress` | —              | coverage/regret gate vs `results/baselines.json`, serve SLO gate vs `results/serve_slo.json` |
//! | `report`  | —              | assemble `results/index.html` |
//!
//! All binaries honor these environment variables:
//!
//! - `MAK_SEEDS` — repetitions per (app, crawler) pair (default 10, §V-A.4);
//! - `MAK_BUDGET_MINUTES` — virtual budget per run (default 30, §V-A.4);
//! - `MAK_THREADS` — worker threads (default: available parallelism);
//! - `MAK_CACHE` — run cache mode, `rw` (default) / `ro` / `off`; cached
//!   cells live under `results/cache/` (see [`mak_metrics::store`]) and
//!   make re-invocations incremental — the second run of any binary only
//!   pays for cells it has not seen;
//! - `MAK_CACHE_DIR` — overrides the cache directory.
//!
//! Results are printed as markdown and also written under `results/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gate;
pub mod phase;
pub mod slo;

use mak::framework::engine::EngineConfig;
use mak_metrics::experiment::RunMatrix;
use mak_metrics::report::RunSummary;
use mak_metrics::store::RunStore;
use std::path::{Path, PathBuf};

/// Repetitions per cell, from `MAK_SEEDS` (default 10, as in the paper).
pub fn seeds() -> u64 {
    std::env::var("MAK_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(10)
}

/// Virtual budget in minutes, from `MAK_BUDGET_MINUTES` (default 30).
pub fn budget_minutes() -> f64 {
    std::env::var("MAK_BUDGET_MINUTES").ok().and_then(|s| s.parse().ok()).unwrap_or(30.0)
}

/// Worker threads, from `MAK_THREADS` (default: available parallelism).
pub fn threads() -> usize {
    std::env::var("MAK_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
}

/// The engine configuration implied by the environment.
pub fn engine_config() -> EngineConfig {
    EngineConfig::with_budget_minutes(budget_minutes())
}

/// A run matrix over `apps` × `crawlers` with environment-derived seeds and
/// budget.
pub fn matrix<A, C>(apps: A, crawlers: C) -> RunMatrix
where
    A: IntoIterator,
    A::Item: Into<String>,
    C: IntoIterator,
    C::Item: Into<String>,
{
    RunMatrix::new(apps, crawlers, seeds()).with_config(engine_config())
}

/// The run store implied by the environment (`MAK_CACHE`,
/// `MAK_CACHE_DIR`): every bench binary routes its matrix through this so
/// overlapping grid cells are computed once and shared.
pub fn store() -> RunStore {
    RunStore::from_env()
}

/// The `results/` directory (created on demand).
///
/// # Panics
///
/// Panics if the directory cannot be created.
pub fn results_dir() -> PathBuf {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    dir.to_path_buf()
}

/// Writes `content` under `results/<name>`, printing the path.
///
/// # Panics
///
/// Panics on I/O errors — harness binaries should fail loudly.
pub fn write_result(name: &str, content: &str) {
    let path = results_dir().join(name);
    std::fs::write(&path, content).expect("write result file");
    println!("\n[written {}]", path.display());
}

/// Persists run summaries as JSON under `results/<name>`.
///
/// # Panics
///
/// Panics on I/O or serialization errors.
pub fn write_summaries(name: &str, summaries: &[RunSummary]) {
    let json = mak_metrics::report::to_json(summaries).expect("serialize summaries");
    write_result(name, &json);
}

/// Formats a fraction as a percentage with one decimal, e.g. `87.3%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        // Do not set the env vars here — tests run in parallel processes
        // sharing the environment; just check the defaults parse.
        assert!(seeds() >= 1);
        assert!(budget_minutes() > 0.0);
        assert!(threads() >= 1);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.873), "87.3%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn matrix_respects_env_shape() {
        let m = matrix(["addressbook"], ["mak"]);
        assert_eq!(m.run_count() as u64, seeds());
    }
}
