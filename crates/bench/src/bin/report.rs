//! Assembles `results/index.html`: a single self-contained page embedding
//! every generated table (markdown → HTML) and figure (inline SVG), so the
//! whole reproduction can be reviewed in one browser tab.
//!
//! Run the other bench binaries first; this one only collects their
//! outputs (it warns about anything missing rather than recomputing).

use mak_bench::{results_dir, write_result};
use std::fmt::Write as _;
use std::path::Path;

/// The report sections, in reading order: (title, markdown file, svg files).
const SECTIONS: &[(&str, &str, &[&str])] = &[
    ("Table I — crawler components", "table1.md", &[]),
    ("Fig. 1 — state-abstraction failures", "fig1.md", &[]),
    (
        "Fig. 2 — coverage over 30 minutes",
        "fig2_summary.md",
        &[
            "fig2_addressbook.svg",
            "fig2_drupal.svg",
            "fig2_hotcrp.svg",
            "fig2_matomo.svg",
            "fig2_oscommerce2.svg",
            "fig2_phpbb2.svg",
            "fig2_vanilla.svg",
            "fig2_wordpress.svg",
        ],
    ),
    ("Table II — estimated mean coverage", "table2.md", &["table2.svg"]),
    ("§V-C — cumulative regret ablation", "ablation.md", &["ablation.svg"]),
    ("§V-D — interactions per run", "perf.md", &[]),
    ("Extension — design-choice ablations", "ablation2.md", &[]),
    ("Extension — budget sensitivity", "sweep.md", &["sweep.svg"]),
];

fn main() {
    let dir = results_dir();
    let mut html = String::from(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>MAK reproduction — results</title>\n<style>\n\
         body { font-family: system-ui, sans-serif; max-width: 880px; margin: 2rem auto;\n\
                color: #0b0b0b; background: #fcfcfb; padding: 0 1rem; }\n\
         h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2.5rem; }\n\
         table { border-collapse: collapse; margin: 1rem 0; font-size: 0.9rem; }\n\
         th, td { border: 1px solid #ecebe9; padding: 4px 10px; text-align: left; }\n\
         th { background: #f4f3f1; }\n\
         td { font-variant-numeric: tabular-nums; }\n\
         pre { background: #f4f3f1; padding: 0.75rem; overflow-x: auto; font-size: 0.85rem; }\n\
         svg { max-width: 100%; height: auto; margin: 0.5rem 0; }\n\
         .missing { color: #a33; }\n\
         </style></head><body>\n\
         <h1>MAK — Multi-Armed Krawler reproduction: results</h1>\n\
         <p>Generated from <code>results/</code>. Regenerate with the\n\
         <code>mak-bench</code> binaries; see EXPERIMENTS.md for the\n\
         paper-vs-measured discussion.</p>\n",
    );

    for (title, md_file, svgs) in SECTIONS {
        let _ = writeln!(html, "<h2>{title}</h2>");
        match std::fs::read_to_string(dir.join(md_file)) {
            Ok(md) => html.push_str(&markdown_to_html(&md)),
            Err(_) => {
                let _ = writeln!(
                    html,
                    "<p class=\"missing\">missing {md_file} — run the corresponding bench binary</p>"
                );
            }
        }
        for svg in *svgs {
            match std::fs::read_to_string(dir.join(svg)) {
                Ok(content) => html.push_str(&content),
                Err(_) => {
                    let _ = writeln!(html, "<p class=\"missing\">missing {svg}</p>");
                }
            }
        }
    }
    html.push_str("</body></html>\n");
    write_result("index.html", &html);
    summarize(&dir);
}

fn summarize(dir: &Path) {
    let entries = std::fs::read_dir(dir).map(|rd| rd.count()).unwrap_or(0);
    println!("report assembled from {entries} files in {}", dir.display());
}

/// A tiny markdown renderer covering exactly what the harness emits:
/// pipe tables, paragraphs, `code` spans, and **bold**.
fn markdown_to_html(md: &str) -> String {
    let mut out = String::new();
    let mut in_table = false;
    let mut para: Vec<&str> = Vec::new();

    let flush_para = |para: &mut Vec<&str>, out: &mut String| {
        if !para.is_empty() {
            let _ = writeln!(out, "<p>{}</p>", inline(&para.join(" ")));
            para.clear();
        }
    };

    for line in md.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with('|') {
            flush_para(&mut para, &mut out);
            let cells: Vec<&str> = trimmed.trim_matches('|').split('|').map(str::trim).collect();
            if cells.iter().all(|c| c.chars().all(|ch| ch == '-' || ch == ':')) {
                continue; // separator row
            }
            if !in_table {
                out.push_str("<table><tr>");
                for c in &cells {
                    let _ = write!(out, "<th>{}</th>", inline(c));
                }
                out.push_str("</tr>\n");
                in_table = true;
            } else {
                out.push_str("<tr>");
                for c in &cells {
                    let _ = write!(out, "<td>{}</td>", inline(c));
                }
                out.push_str("</tr>\n");
            }
            continue;
        }
        if in_table {
            out.push_str("</table>\n");
            in_table = false;
        }
        if trimmed.is_empty() {
            flush_para(&mut para, &mut out);
        } else if let Some(h) = trimmed.strip_prefix("## ") {
            flush_para(&mut para, &mut out);
            let _ = writeln!(out, "<h3>{}</h3>", inline(h));
        } else if let Some(h) = trimmed.strip_prefix("# ") {
            flush_para(&mut para, &mut out);
            let _ = writeln!(out, "<h3>{}</h3>", inline(h));
        } else {
            para.push(trimmed);
        }
    }
    if in_table {
        out.push_str("</table>\n");
    }
    flush_para(&mut para, &mut out);
    out
}

/// Escapes HTML and renders `**bold**` and `` `code` `` spans.
fn inline(s: &str) -> String {
    let escaped = s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;");
    let mut out = String::new();
    let mut bold = false;
    let mut code = false;
    let mut chars = escaped.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '*' if chars.peek() == Some(&'*') => {
                chars.next();
                out.push_str(if bold { "</strong>" } else { "<strong>" });
                bold = !bold;
            }
            '`' => {
                out.push_str(if code { "</code>" } else { "<code>" });
                code = !code;
            }
            other => out.push(other),
        }
    }
    if bold {
        out.push_str("</strong>");
    }
    if code {
        out.push_str("</code>");
    }
    out
}
