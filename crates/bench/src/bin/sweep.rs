//! Budget-sensitivity sweep (extension): coverage as a function of the
//! crawl budget, 5–60 virtual minutes.
//!
//! The paper fixes 30 minutes (§V-A.4, following WebExplor/QExplore); this
//! sweep asks how sensitive the comparison is to that choice — do the
//! Q-learning baselines catch up given more time, or is the MAK gap a
//! plateau difference rather than a speed difference?

use mak::framework::engine::EngineConfig;
use mak::spec::RL_CRAWLERS;
use mak_bench::{seeds, store, threads, write_result};
use mak_metrics::experiment::{run_matrix_cached, RunMatrix};
use mak_metrics::plot::{LineChart, Series};
use mak_metrics::report::{csv, markdown_table};
use mak_metrics::stats::{mean, sample_std};
use std::fmt::Write as _;

const BUDGETS_MIN: &[f64] = &[5.0, 10.0, 15.0, 20.0, 30.0, 45.0, 60.0];
const APP: &str = "drupal";

fn main() {
    mak_obs::progress!(
        "sweep: {} budgets x {} crawlers x {} seeds on {APP}, {} threads",
        BUDGETS_MIN.len(),
        RL_CRAWLERS.len(),
        seeds(),
        threads()
    );

    // Per-crawler (name, mean series, (x, lo, hi) band series).
    type CrawlerSeries = (String, Vec<(f64, f64)>, Vec<(f64, f64, f64)>);
    let mut rows = Vec::new();
    let mut chart_series: Vec<CrawlerSeries> =
        RL_CRAWLERS.iter().map(|c| ((*c).to_owned(), Vec::new(), Vec::new())).collect();

    let cache = store();
    for &budget in BUDGETS_MIN {
        let matrix = RunMatrix::new([APP], RL_CRAWLERS.iter().copied(), seeds())
            .with_config(EngineConfig::with_budget_minutes(budget));
        let reports = run_matrix_cached(&matrix, threads(), &cache);
        let mut row = vec![format!("{budget:.0}")];
        for (i, crawler) in RL_CRAWLERS.iter().enumerate() {
            let lines: Vec<f64> = reports
                .iter()
                .filter(|r| &r.crawler == crawler)
                .map(|r| r.final_lines_covered as f64)
                .collect();
            let (m, s) = (mean(&lines), sample_std(&lines));
            row.push(format!("{m:.0} ± {s:.0}"));
            chart_series[i].1.push((budget, m));
            chart_series[i].2.push((budget, m - s, m + s));
        }
        rows.push(row);
    }

    let mut headers = vec!["budget (min)"];
    headers.extend(RL_CRAWLERS);
    let table = markdown_table(&headers, &rows);

    let mut chart = LineChart::new(
        format!("{APP} — coverage vs crawl budget ({} seeds)", seeds()),
        "budget (virtual minutes)",
        "server-side lines covered",
    );
    for (name, points, band) in chart_series {
        chart = chart.series(Series { name, points, band });
    }
    write_result("sweep.svg", &chart.to_svg());

    let csv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|c| c.split(" ±").next().unwrap_or(c).to_owned()).collect())
        .collect();
    write_result("sweep.csv", &csv(&headers, &csv_rows));

    let mut out = String::new();
    let _ = writeln!(out, "Budget sensitivity on {APP} ({} seeds per cell):\n", seeds());
    let _ = writeln!(out, "{table}");
    let _ = writeln!(
        out,
        "Reading guide: if the baselines' curves approach MAK's at large budgets, the\n30-minute gap is a speed difference; parallel curves mean a plateau difference."
    );
    println!("{out}");
    write_result("sweep.md", &out);
}
