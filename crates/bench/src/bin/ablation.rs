//! Regenerates the **§V-C ablation**: cumulative regret of MAK against the
//! non-learning BFS, DFS and Random crawlers.
//!
//! Paper result: MAK 14.9, BFS 36.0, Random 70.2, DFS 126.7 — the learning
//! component lets MAK track the per-application best static strategy.

use mak_bench::{matrix, seeds, store, threads, write_result, write_summaries};
use mak_metrics::experiment::run_matrix_cached;
use mak_metrics::ground_truth::UnionCoverage;
use mak_metrics::plot::{BarChart, BarSeries};
use mak_metrics::regret::{cumulative_regret, AppOutcome};
use mak_metrics::report::{markdown_table, RunSummary};
use mak_websim::apps;
use std::collections::BTreeMap;
use std::fmt::Write as _;

const CRAWLERS: &[&str] = &["mak", "bfs", "dfs", "random"];

fn main() {
    let all = apps::all_names();
    let m = matrix(all.iter().copied(), CRAWLERS.iter().copied());
    mak_obs::progress!(
        "ablation: {} runs ({} apps x {} crawlers x {} seeds) on {} threads",
        m.run_count(),
        all.len(),
        CRAWLERS.len(),
        seeds(),
        threads()
    );
    let reports = run_matrix_cached(&m, threads(), &store());

    let mut outcomes = Vec::new();
    let mut per_app_rows = Vec::new();
    for app in &all {
        let app_reports: Vec<_> = reports.iter().filter(|r| &r.app == app).collect();
        let union = UnionCoverage::from_reports(app_reports.iter().copied());
        let mut runs: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for r in &app_reports {
            runs.entry(r.crawler.clone()).or_default().push(r.final_lines_covered as f64);
        }
        let outcome = AppOutcome::from_runs(*app, &runs, union.len() as f64);
        let regrets: BTreeMap<String, f64> = outcome.regrets().into_iter().collect();
        let mut row = vec![(*app).to_owned()];
        for c in CRAWLERS {
            row.push(format!("{:.1}", regrets[*c]));
        }
        per_app_rows.push(row);
        outcomes.push(outcome);
    }

    let cumulative = cumulative_regret(&outcomes);

    // SVG companion: one bar per crawler, sorted best-first.
    let chart = BarChart::new(
        format!("Cumulative regret over {} apps ({} seeds)", all.len(), seeds()),
        "regret (percentage points)",
        cumulative.iter().map(|(c, _)| c.clone()),
    )
    .series(BarSeries {
        name: "cumulative regret".to_owned(),
        values: cumulative.iter().map(|(_, r)| *r).collect(),
    });
    write_result("ablation.svg", &chart.to_svg());

    let mut headers = vec!["Application"];
    headers.extend(CRAWLERS);
    let per_app_table = markdown_table(&headers, &per_app_rows);
    let cum_rows: Vec<Vec<String>> =
        cumulative.iter().map(|(c, r)| vec![c.clone(), format!("{r:.1}")]).collect();
    let cum_table = markdown_table(&["Crawler", "Cumulative regret"], &cum_rows);

    let mut out = String::new();
    let _ = writeln!(out, "Ablation (§V-C): regret per application (percentage points).\n");
    let _ = writeln!(out, "{per_app_table}");
    let _ = writeln!(out, "Cumulative regret (lower = closer to the per-app best strategy):\n");
    let _ = writeln!(out, "{cum_table}");
    let _ = writeln!(
        out,
        "Paper reference: MAK 14.9 < BFS 36.0 < Random 70.2 < DFS 126.7 (same ordering expected)."
    );
    println!("{out}");
    write_result("ablation.md", &out);
    let summaries: Vec<RunSummary> = reports.iter().map(RunSummary::from).collect();
    write_summaries("ablation_runs.json", &summaries);
}
