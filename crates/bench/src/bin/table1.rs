//! Regenerates **Table I**: the component summary of the reviewed RL-based
//! crawlers and MAK.

use mak::spec::table1;
use mak_metrics::report::markdown_table;

fn main() {
    let rows: Vec<Vec<String>> = table1()
        .into_iter()
        .map(|s| {
            vec![
                s.tool.to_owned(),
                s.state_abstraction.to_owned(),
                s.action_definition.to_owned(),
                s.reward.to_owned(),
                s.policy_update.to_owned(),
                s.action_selection.to_owned(),
            ]
        })
        .collect();
    let table = markdown_table(
        &[
            "Tool",
            "State Abstraction",
            "Action Definition",
            "Reward",
            "Policy Update",
            "Action Selection",
        ],
        &rows,
    );
    println!("Table I: Summary of the components of the reviewed RL-based crawlers and MAK.\n");
    println!("{table}");
    mak_bench::write_result("table1.md", &table);
}
