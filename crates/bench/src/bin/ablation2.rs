//! Extended design-choice ablations (beyond the paper's §V-C).
//!
//! DESIGN.md commits to quantifying what each of MAK's design choices buys.
//! This binary compares the full MAK against variants that change exactly
//! one choice:
//!
//! - **arm policy** — `mak-exp3` (no epoch resets), `mak-epsilon` /
//!   `mak-ucb1` (stochastic-bandit assumptions the paper argues against in
//!   §IV-D), `mak-uniform` (no learning at all);
//! - **reward** — `mak-raw` (unstandardized link-coverage increments),
//!   `mak-curiosity` (an element-level curiosity reward, §III-B's critique
//!   transplanted into the stateless setting);
//! - **pool structure** — `mak-flat` (no levels: interacted elements
//!   re-enter at level 0, losing the curiosity-in-action-space mechanism of
//!   §IV-B).

use mak::spec::MAK_VARIANTS;
use mak_bench::{matrix, seeds, store, threads, write_result, write_summaries};
use mak_metrics::experiment::run_matrix_cached;
use mak_metrics::ground_truth::UnionCoverage;
use mak_metrics::report::{markdown_table, RunSummary};
use mak_metrics::stats::mean;
use std::fmt::Write as _;

/// A representative slice of the testbed: one app per structural family.
const APPS: &[&str] = &["hotcrp", "drupal", "wordpress", "oscommerce2", "phpbb2"];

fn main() {
    let crawlers: Vec<&str> = std::iter::once("mak").chain(MAK_VARIANTS.iter().copied()).collect();
    let m = matrix(APPS.iter().copied(), crawlers.iter().copied());
    mak_obs::progress!(
        "ablation2: {} runs ({} apps x {} variants x {} seeds) on {} threads",
        m.run_count(),
        APPS.len(),
        crawlers.len(),
        seeds(),
        threads()
    );
    let reports = run_matrix_cached(&m, threads(), &store());

    // Per-app unions over all variants, then coverage per variant.
    let mut rows = Vec::new();
    for crawler in &crawlers {
        let mut row = vec![(*crawler).to_owned()];
        let mut total_cov = Vec::new();
        for app in APPS {
            let app_reports: Vec<_> = reports.iter().filter(|r| &r.app == app).collect();
            let union = UnionCoverage::from_reports(app_reports.iter().copied());
            let covs: Vec<f64> = app_reports
                .iter()
                .filter(|r| &r.crawler == crawler)
                .map(|r| r.final_lines_covered as f64 / union.len() as f64)
                .collect();
            let v = mean(&covs);
            total_cov.push(v);
            row.push(format!("{:.1}", 100.0 * v));
        }
        row.push(format!("{:.1}", 100.0 * mean(&total_cov)));
        rows.push(row);
    }
    // Sort descending by the mean column so the table reads as a ranking.
    rows.sort_by(|a, b| {
        let pa: f64 = a.last().unwrap().parse().unwrap();
        let pb: f64 = b.last().unwrap().parse().unwrap();
        pb.total_cmp(&pa)
    });

    let mut headers = vec!["Variant"];
    headers.extend(APPS);
    headers.push("mean");
    let table = markdown_table(&headers, &rows);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Design-choice ablations: estimated mean coverage (% of per-app union),\n{} seeds per cell. `mak` = the paper's configuration.\n",
        seeds()
    );
    let _ = writeln!(out, "{table}");
    let _ = writeln!(
        out,
        "Reading guide: `mak-uniform` isolates the learning component, `mak-flat` the\nleveled deque, `mak-raw` the reward standardization, `mak-curiosity` the link\ncoverage signal, and `mak-exp3`/`mak-epsilon`/`mak-ucb1` the adversarial\n(Exp3.1) solver choice."
    );
    println!("{out}");
    write_result("ablation2.md", &out);
    let summaries: Vec<RunSummary> = reports.iter().map(RunSummary::from).collect();
    write_summaries("ablation2_runs.json", &summaries);
}
