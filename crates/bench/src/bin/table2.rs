//! Regenerates **Table II**: estimated mean code coverage of MAK,
//! WebExplor and QExplore on all eleven applications.
//!
//! Following §V-B: for PHP-style (live-coverage) applications the ground
//! truth is the union of unique covered lines across all crawlers and runs;
//! for Node.js-style applications the denominator is the tool-reported
//! total line count.

use mak::spec::RL_CRAWLERS;
use mak_bench::gate::{measure, CellResult, GateConfig};
use mak_bench::{
    budget_minutes, matrix, pct, seeds, store, threads, write_result, write_summaries,
};
use mak_metrics::experiment::run_matrix_cached_observed;
use mak_metrics::ground_truth::UnionCoverage;
use mak_metrics::plot::{BarChart, BarSeries};
use mak_metrics::report::{markdown_table, RunSummary};
use mak_metrics::stats::mean;
use mak_obs::sink::{SharedSink, VecSink};
use mak_websim::apps::{self, NODE_APPS};
use std::fmt::Write as _;

fn main() {
    let all = apps::all_names();
    let m = matrix(all.iter().copied(), RL_CRAWLERS.iter().copied());
    mak_obs::progress!(
        "table2: {} runs ({} apps x {} crawlers x {} seeds) on {} threads",
        m.run_count(),
        all.len(),
        RL_CRAWLERS.len(),
        seeds(),
        threads()
    );
    let (cell_sink, cells_collected) = SharedSink::shared(VecSink::new());
    let reports = run_matrix_cached_observed(&m, threads(), &store(), &cell_sink);

    let mut rows = Vec::new();
    let mut chart_values: Vec<Vec<f64>> = vec![Vec::new(); RL_CRAWLERS.len()];
    for app in &all {
        let app_reports: Vec<_> = reports.iter().filter(|r| &r.app == app).collect();
        let union = UnionCoverage::from_reports(app_reports.iter().copied());
        let node = NODE_APPS.contains(app);
        let denominator =
            if node { app_reports[0].total_declared_lines as f64 } else { union.len() as f64 };

        let mut row = vec![(*app).to_owned()];
        let mut best = (0usize, f64::MIN);
        let mut values = Vec::new();
        for (i, crawler) in RL_CRAWLERS.iter().enumerate() {
            let covs: Vec<f64> = app_reports
                .iter()
                .filter(|r| &r.crawler == crawler)
                .map(|r| r.final_lines_covered as f64 / denominator)
                .collect();
            let v = mean(&covs);
            if v > best.1 {
                best = (i, v);
            }
            values.push(v);
        }
        for (i, v) in values.iter().enumerate() {
            let cell = if i == best.0 { format!("**{}**", pct(*v)) } else { pct(*v) };
            row.push(cell);
            chart_values[i].push(100.0 * v);
        }
        rows.push(row);
    }

    // SVG companion: grouped bars per application (the markdown table is
    // the table view).
    let mut chart = BarChart::new(
        format!("Table II — estimated mean coverage ({} seeds)", seeds()),
        "% of ground truth",
        all.iter().copied(),
    );
    for (i, crawler) in RL_CRAWLERS.iter().enumerate() {
        chart = chart
            .series(BarSeries { name: (*crawler).to_owned(), values: chart_values[i].clone() });
    }
    write_result("table2.svg", &chart.to_svg());

    let mut headers = vec!["Application"];
    headers.extend(["MAK", "WebExplor", "QExplore"]);
    let table = markdown_table(&headers, &rows);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table II: estimated mean code coverage ({} seeds per cell; PHP apps vs union\nground truth, Node.js apps vs tool-reported totals). Best per app in bold.\n",
        seeds()
    );
    let _ = writeln!(out, "{table}");
    println!("{out}");
    write_result("table2.md", &out);
    let summaries: Vec<RunSummary> = reports.iter().map(RunSummary::from).collect();
    write_summaries("table2_runs.json", &summaries);

    // Gate-shaped view of the same matrix, for ad-hoc comparison against
    // `results/baselines.json` (the gate itself is the `regress` binary).
    let events =
        cells_collected.lock().unwrap_or_else(std::sync::PoisonError::into_inner).events().to_vec();
    let bench = measure(
        reports.iter().map(CellResult::from),
        events.iter(),
        GateConfig { seeds: seeds(), budget_minutes: budget_minutes() },
    );
    write_result(
        "BENCH_coverage.json",
        &serde_json::to_string_pretty(&bench).expect("bench serializes"),
    );
}
