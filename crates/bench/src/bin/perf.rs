//! Regenerates the **§V-D performance evaluation**: the mean number of
//! elements each crawler interacted with per run.
//!
//! Paper result: MAK 883, WebExplor 854, QExplore 827 — MAK's coverage gain
//! is "not merely due to more frequent interactions but rather to a more
//! effective selection of elements".
//!
//! Besides the paper table, this binary profiles the harness itself into
//! `results/BENCH_perf.json`: per-cell wall-clock milliseconds and
//! steps/second (from the `CellFinished` event stream of
//! [`run_matrix_cached_observed`]), the session cache hit rate, and a
//! virtual-budget profile of one instrumented `phpbb2`/`mak` run
//! (per-bucket time attribution and peak deque depth, from an
//! [`Aggregator`] sink).

use mak::framework::engine::run_crawl_with_sink;
use mak::spec::{build_crawler, RL_CRAWLERS};
use mak_bench::{engine_config, matrix, seeds, store, threads, write_result, write_summaries};
use mak_metrics::experiment::run_matrix_cached_observed;
use mak_metrics::report::{markdown_table, RunSummary};
use mak_metrics::stats::{mean, sample_std};
use mak_obs::aggregate::Aggregator;
use mak_obs::event::Event;
use mak_obs::sink::{SharedSink, SinkHandle, VecSink};
use mak_obs::span::PhaseTotals;
use mak_websim::apps;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One matrix cell's harness cost, from its `CellFinished` event.
#[derive(Debug, Serialize)]
struct PerfCell {
    app: String,
    crawler: String,
    seed: u64,
    /// Wall-clock cost of producing the cell (cache hits are ~free).
    wall_ms: f64,
    virtual_secs: f64,
    interactions: u64,
    /// Interactions per wall-clock second — the harness throughput.
    steps_per_sec: f64,
    cached: bool,
    /// Where the cell's *virtual* time went (from the `CrawlReport`, so
    /// cache hits keep their breakdown); the buckets sum to
    /// `virtual_secs` within float noise.
    phase: PhaseTotals,
}

/// Session cache totals for the matrix pass.
#[derive(Debug, Serialize)]
struct PerfCache {
    hits: u64,
    misses: u64,
    hit_rate: f64,
}

/// Virtual-budget attribution of one instrumented run.
#[derive(Debug, Serialize)]
struct PerfProfile {
    app: String,
    crawler: String,
    seed: u64,
    steps: u64,
    peak_deque: u64,
    epoch_advances: u64,
    fetch_ms: f64,
    think_ms: f64,
    interact_ms: f64,
    policy_ms: f64,
    steps_per_virtual_sec: f64,
}

/// Per-app phase totals folded over every crawler and seed — the
/// denominator of the blessed per-phase share ceilings `regress` gates.
#[derive(Debug, Serialize)]
struct AppPhases {
    app: String,
    phase: PhaseTotals,
}

/// The `results/BENCH_perf.json` document.
#[derive(Debug, Serialize)]
struct PerfReport {
    budget_minutes: f64,
    seeds: u64,
    threads: u64,
    cells: Vec<PerfCell>,
    cache: PerfCache,
    profile: PerfProfile,
    /// Per-app virtual-time phase breakdown, summed over the matrix.
    phase_by_app: Vec<AppPhases>,
}

fn profile_run() -> PerfProfile {
    let (sink, cell) = SinkHandle::shared(Aggregator::new());
    let mut crawler = build_crawler("mak", 0).expect("mak is a known crawler");
    let app = apps::build("phpbb2").expect("phpbb2 is a known app");
    run_crawl_with_sink(&mut *crawler, app, &engine_config(), 0, &sink);
    let agg = cell.lock().unwrap();
    PerfProfile {
        app: agg.app.clone(),
        crawler: agg.crawler.clone(),
        seed: agg.seed,
        steps: agg.steps,
        peak_deque: agg.deque_peak,
        epoch_advances: agg.epoch_advances,
        fetch_ms: agg.profile.fetch_ms,
        think_ms: agg.profile.think_ms,
        interact_ms: agg.profile.interact_ms,
        policy_ms: agg.profile.policy_ms,
        steps_per_virtual_sec: agg.steps_per_virtual_sec(),
    }
}

fn main() {
    let all = apps::all_names();
    let m = matrix(all.iter().copied(), RL_CRAWLERS.iter().copied());
    mak_obs::progress!(
        "perf: {} runs ({} apps x {} crawlers x {} seeds) on {} threads",
        m.run_count(),
        all.len(),
        RL_CRAWLERS.len(),
        seeds(),
        threads()
    );
    let store = store();
    let (cell_sink, cells_collected) = SharedSink::shared(VecSink::new());
    let reports = run_matrix_cached_observed(&m, threads(), &store, &cell_sink);

    let mut rows = Vec::new();
    for crawler in RL_CRAWLERS {
        let counts: Vec<f64> = reports
            .iter()
            .filter(|r| &r.crawler == crawler)
            .map(|r| r.interactions as f64)
            .collect();
        let states: Vec<f64> = reports
            .iter()
            .filter(|r| &r.crawler == crawler)
            .filter_map(|r| r.state_count.map(|s| s as f64))
            .collect();
        rows.push(vec![
            (*crawler).to_owned(),
            format!("{:.0}", mean(&counts)),
            format!("{:.0}", sample_std(&counts)),
            if states.is_empty() { "-".to_owned() } else { format!("{:.0}", mean(&states)) },
        ]);
    }

    let table = markdown_table(
        &["Crawler", "Mean interacted elements / run", "Std", "Mean states created"],
        &rows,
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Performance (§V-D): interactions per 30-minute run, averaged over the {} \napplications x {} seeds.\n",
        all.len(),
        seeds()
    );
    let _ = writeln!(out, "{table}");
    let _ = writeln!(out, "Paper reference: MAK 883, WebExplor 854, QExplore 827.");
    println!("{out}");
    write_result("perf.md", &out);
    let summaries: Vec<RunSummary> = reports.iter().map(RunSummary::from).collect();
    write_summaries("perf_runs.json", &summaries);

    // Harness-profiling artifact. Cell order follows the worker schedule,
    // so sort for a stable layout (the wall-clock values themselves are
    // inherently run-dependent). Phase breakdowns come from the reports
    // (deterministic and cached), keyed per cell.
    let report_phases: BTreeMap<(&str, &str, u64), PhaseTotals> =
        reports.iter().map(|r| ((r.app.as_str(), r.crawler.as_str(), r.seed), r.phase)).collect();
    let mut cells: Vec<PerfCell> = cells_collected
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .events()
        .iter()
        .filter_map(|event| match event {
            Event::CellFinished {
                app,
                crawler,
                seed,
                wall_ms,
                virtual_secs,
                interactions,
                cached,
            } => Some(PerfCell {
                app: app.clone(),
                crawler: crawler.clone(),
                seed: *seed,
                wall_ms: *wall_ms,
                virtual_secs: *virtual_secs,
                interactions: *interactions,
                steps_per_sec: if *wall_ms > 0.0 {
                    *interactions as f64 / (*wall_ms / 1000.0)
                } else {
                    0.0
                },
                cached: *cached,
                phase: report_phases
                    .get(&(app.as_str(), crawler.as_str(), *seed))
                    .copied()
                    .unwrap_or_default(),
            }),
            _ => None,
        })
        .collect();
    cells.sort_by(|a, b| (&a.app, &a.crawler, a.seed).cmp(&(&b.app, &b.crawler, b.seed)));
    let mut phase_by_app: BTreeMap<&str, PhaseTotals> = BTreeMap::new();
    for report in &reports {
        phase_by_app.entry(report.app.as_str()).or_default().add(&report.phase);
    }
    let phase_by_app: Vec<AppPhases> = phase_by_app
        .into_iter()
        .map(|(app, phase)| AppPhases { app: app.to_owned(), phase })
        .collect();
    let hits = store.session_hits();
    let misses = store.session_misses();
    let looked_up = hits + misses;
    let perf = PerfReport {
        budget_minutes: mak_bench::budget_minutes(),
        seeds: seeds(),
        threads: threads() as u64,
        cells,
        cache: PerfCache {
            hits,
            misses,
            hit_rate: if looked_up == 0 { 0.0 } else { hits as f64 / looked_up as f64 },
        },
        profile: profile_run(),
        phase_by_app,
    };
    write_result(
        "BENCH_perf.json",
        &serde_json::to_string_pretty(&perf).expect("perf report serializes"),
    );
}
