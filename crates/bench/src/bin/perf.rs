//! Regenerates the **§V-D performance evaluation**: the mean number of
//! elements each crawler interacted with per run.
//!
//! Paper result: MAK 883, WebExplor 854, QExplore 827 — MAK's coverage gain
//! is "not merely due to more frequent interactions but rather to a more
//! effective selection of elements".

use mak::spec::RL_CRAWLERS;
use mak_bench::{matrix, seeds, store, threads, write_result, write_summaries};
use mak_metrics::experiment::run_matrix_cached;
use mak_metrics::report::{markdown_table, RunSummary};
use mak_metrics::stats::{mean, sample_std};
use mak_websim::apps;
use std::fmt::Write as _;

fn main() {
    let all = apps::all_names();
    let m = matrix(all.iter().copied(), RL_CRAWLERS.iter().copied());
    eprintln!(
        "perf: {} runs ({} apps x {} crawlers x {} seeds) on {} threads",
        m.run_count(),
        all.len(),
        RL_CRAWLERS.len(),
        seeds(),
        threads()
    );
    let reports = run_matrix_cached(&m, threads(), &store());

    let mut rows = Vec::new();
    for crawler in RL_CRAWLERS {
        let counts: Vec<f64> = reports
            .iter()
            .filter(|r| &r.crawler == crawler)
            .map(|r| r.interactions as f64)
            .collect();
        let states: Vec<f64> = reports
            .iter()
            .filter(|r| &r.crawler == crawler)
            .filter_map(|r| r.state_count.map(|s| s as f64))
            .collect();
        rows.push(vec![
            (*crawler).to_owned(),
            format!("{:.0}", mean(&counts)),
            format!("{:.0}", sample_std(&counts)),
            if states.is_empty() { "-".to_owned() } else { format!("{:.0}", mean(&states)) },
        ]);
    }

    let table = markdown_table(
        &["Crawler", "Mean interacted elements / run", "Std", "Mean states created"],
        &rows,
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Performance (§V-D): interactions per 30-minute run, averaged over the {} \napplications x {} seeds.\n",
        all.len(),
        seeds()
    );
    let _ = writeln!(out, "{table}");
    let _ = writeln!(out, "Paper reference: MAK 883, WebExplor 854, QExplore 827.");
    println!("{out}");
    write_result("perf.md", &out);
    let summaries: Vec<RunSummary> = reports.iter().map(RunSummary::from).collect();
    write_summaries("perf_runs.json", &summaries);
}
