//! Regenerates **Fig. 2**: mean ± standard deviation of the code coverage
//! reached over 30 minutes by QExplore, WebExplor and MAK on the eight
//! PHP-based applications (live Xdebug-style coverage).
//!
//! Output: one CSV per application under `results/fig2_<app>.csv` with the
//! aggregated series, plus a summary of final coverage and convergence
//! times printed as markdown.

use mak::spec::RL_CRAWLERS;
use mak_bench::{matrix, seeds, store, threads, write_result, write_summaries};
use mak_metrics::experiment::run_matrix_cached;
use mak_metrics::plot::{LineChart, Series};
use mak_metrics::report::{csv, markdown_table, RunSummary};
use mak_metrics::timeseries::{aggregate, convergence_index, resample, MeanStd};
use mak_websim::apps::PHP_APPS;
use std::fmt::Write as _;

/// Fig. 2 samples the 30-minute budget on a half-minute grid.
const GRID_POINTS: usize = 60;

/// X position (in minutes) of grid point `i`.
fn minutes_at(i: usize, horizon_secs: f64) -> f64 {
    horizon_secs * (i + 1) as f64 / GRID_POINTS as f64 / 60.0
}

fn main() {
    let m = matrix(PHP_APPS.iter().copied(), RL_CRAWLERS.iter().copied());
    mak_obs::progress!(
        "fig2: {} runs ({} apps x {} crawlers x {} seeds) on {} threads",
        m.run_count(),
        PHP_APPS.len(),
        RL_CRAWLERS.len(),
        seeds(),
        threads()
    );
    let horizon = m.config.budget_minutes * 60.0;
    let reports = run_matrix_cached(&m, threads(), &store());

    let mut summary_rows = Vec::new();
    for app in PHP_APPS {
        // Aggregate each crawler's runs onto the common grid.
        let mut per_crawler: Vec<(&str, Vec<MeanStd>)> = Vec::new();
        for crawler in RL_CRAWLERS {
            let runs: Vec<Vec<u64>> = reports
                .iter()
                .filter(|r| &r.app == app && &r.crawler == crawler)
                .map(|r| resample(&r.coverage_series, horizon, GRID_POINTS))
                .collect();
            per_crawler.push((crawler, aggregate(&runs)));
        }

        // CSV: one row per grid point.
        let mut headers = vec!["secs".to_owned()];
        for (c, _) in &per_crawler {
            headers.push(format!("{c}_mean"));
            headers.push(format!("{c}_std"));
        }
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = (0..GRID_POINTS)
            .map(|i| {
                let mut row = vec![format!("{:.0}", horizon * (i + 1) as f64 / GRID_POINTS as f64)];
                for (_, series) in &per_crawler {
                    row.push(format!("{:.1}", series[i].mean));
                    row.push(format!("{:.1}", series[i].std));
                }
                row
            })
            .collect();
        write_result(&format!("fig2_{app}.csv"), &csv(&header_refs, &rows));

        // SVG rendering of the same curves (the CSV is the table view).
        let mut chart = LineChart::new(
            format!("{app} — code coverage over 30 minutes (mean ± std, {} runs)", seeds()),
            "virtual minutes",
            "server-side lines covered",
        );
        for (c, series) in &per_crawler {
            let points: Vec<(f64, f64)> =
                series.iter().enumerate().map(|(i, p)| (minutes_at(i, horizon), p.mean)).collect();
            let band: Vec<(f64, f64, f64)> = series
                .iter()
                .enumerate()
                .map(|(i, p)| (minutes_at(i, horizon), p.mean - p.std, p.mean + p.std))
                .collect();
            chart = chart.series(Series { name: (*c).to_owned(), points, band });
        }
        write_result(&format!("fig2_{app}.svg"), &chart.to_svg());

        // Summary rows. Two convergence views: time to 95% of *own* final,
        // and — the paper's §V-B speed claim ("MAK reaches the highest
        // coverage on PhpBB2 in under six minutes, whereas the baselines
        // fail to achieve the same code coverage in 30 minutes") — time to
        // reach the best *baseline's* final coverage.
        let best_baseline_final = per_crawler
            .iter()
            .filter(|(c, _)| *c != "mak")
            .map(|(_, s)| s.last().expect("non-empty grid").mean)
            .fold(0.0f64, f64::max);
        for (c, series) in &per_crawler {
            let last = series.last().expect("non-empty grid");
            let to_min = |i: usize| {
                format!("{:.1} min", horizon * (i + 1) as f64 / GRID_POINTS as f64 / 60.0)
            };
            let conv_own = convergence_index(series, 0.95).map(to_min).unwrap_or("-".into());
            let conv_baseline = series
                .iter()
                .position(|p| p.mean >= best_baseline_final)
                .map(to_min)
                .unwrap_or_else(|| "never".to_owned());
            summary_rows.push(vec![
                (*app).to_owned(),
                (*c).to_owned(),
                format!("{:.0} ± {:.0}", last.mean, last.std),
                conv_own,
                conv_baseline,
            ]);
        }
    }

    let table = markdown_table(
        &[
            "Application",
            "Crawler",
            "Final lines (mean ± std)",
            "Time to 95% of own final",
            "Time to best baseline's final",
        ],
        &summary_rows,
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 2 summary: coverage over {} virtual minutes, {} runs per cell.\n",
        m.config.budget_minutes,
        seeds()
    );
    let _ = writeln!(out, "{table}");
    println!("{out}");
    write_result("fig2_summary.md", &out);
    let summaries: Vec<RunSummary> = reports.iter().map(RunSummary::from).collect();
    write_summaries("fig2_runs.json", &summaries);
}
