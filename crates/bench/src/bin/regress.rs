//! The coverage/perf **regression gate**: runs a small cache-accelerated
//! matrix (all apps × all six crawlers), folds it into
//! `results/BENCH_coverage.json`, and compares the deterministic metrics
//! (per-pair mean coverage and interactions, per-crawler cumulative
//! regret) against the committed `results/baselines.json`, exiting
//! non-zero on any regression beyond the blessed tolerances.
//!
//! ```text
//! cargo run --release -p mak-bench --bin regress            # gate
//! cargo run --release -p mak-bench --bin regress -- --bless # re-bless
//! ```
//!
//! Unlike the paper-scale binaries, the gate defaults to a small matrix:
//! `MAK_SEEDS` defaults to **2** and `MAK_BUDGET_MINUTES` to **5** here,
//! so an uncached pass stays in the seconds range. Baselines embed the
//! knobs they were blessed under; a mismatched run refuses to compare
//! instead of reporting phantom drift. The aggregate wall-clock envelope
//! is reported on stderr only — it is not deterministic and never gates —
//! but per-app steps/sec is held to the blessed floors at a generous
//! fractional tolerance (apps whose cells all came from the cache are
//! skipped: cached cells carry no wall-clock signal).
//!
//! The gate also covers the **serving layer**: `results/BENCH_serve.json`
//! (written by the `serve` binary) is checked against the blessed SLOs in
//! `results/serve_slo.json` — sessions/hour floor, p99 step-latency
//! ceiling, zero aborted sessions (see [`mak_bench::slo`]). `--bless`
//! re-blesses the SLOs alongside the coverage baselines; the gate skips
//! with a note when the serve report is absent, and `MAK_SERVE_SLO=off`
//! disables it outright.
//!
//! Finally, the **per-phase share gate**: the per-app virtual-time phase
//! breakdown in `results/BENCH_perf.json` (written by the `perf` binary)
//! is held to the blessed share ceilings in `results/phase_gate.json`
//! (see [`mak_bench::phase`]). `--bless` re-derives the ceilings, the
//! gate skips with a note when either file is absent, and
//! `MAK_PHASE_GATE=off` disables it.

use mak::framework::engine::EngineConfig;
use mak::spec::CRAWLER_NAMES;
use mak_bench::gate::{compare, measure, Baselines, CellResult, GateConfig, Tolerances};
use mak_bench::phase::{PerfPhaseView, PhaseGate};
use mak_bench::slo::{ServeReport, ServeSlo};
use mak_bench::{results_dir, store, threads, write_result};
use mak_metrics::experiment::{run_matrix_cached_observed, RunMatrix};
use mak_obs::sink::{SharedSink, VecSink};
use mak_websim::apps;
use std::process::ExitCode;

/// Seeds per pair — `MAK_SEEDS`, defaulting to the gate-sized 2 (not the
/// paper-scale 10 of `mak_bench::seeds`).
fn gate_seeds() -> u64 {
    std::env::var("MAK_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(2)
}

/// Budget per run — `MAK_BUDGET_MINUTES`, defaulting to the gate-sized 5.
fn gate_budget_minutes() -> f64 {
    std::env::var("MAK_BUDGET_MINUTES").ok().and_then(|s| s.parse().ok()).unwrap_or(5.0)
}

/// The serving-layer half of the gate. With `bless`, derives and writes
/// `results/serve_slo.json` from the current serve report. Without,
/// returns the SLO findings (empty = pass). A missing report or missing
/// blessed SLOs skip with a note; an unparseable file is an `Err` — a
/// corrupt artifact must fail loudly, not silently widen the gate.
fn serve_slo_gate(bless: bool) -> Result<Vec<String>, String> {
    if std::env::var("MAK_SERVE_SLO").map(|v| v == "off").unwrap_or(false) {
        println!("serve SLO gate skipped (MAK_SERVE_SLO=off)");
        return Ok(Vec::new());
    }
    let report_path = results_dir().join("BENCH_serve.json");
    let text = match std::fs::read_to_string(&report_path) {
        Ok(t) => t,
        Err(_) => {
            println!(
                "serve SLO gate skipped: {} absent (generate with: \
                 cargo run --release -p mak-bench --bin serve)",
                report_path.display()
            );
            return Ok(Vec::new());
        }
    };
    let report: ServeReport = serde_json::from_str(&text)
        .map_err(|e| format!("{} is not a valid serve report: {e}", report_path.display()))?;

    if bless {
        let slo = ServeSlo::bless(&report);
        write_result(
            "serve_slo.json",
            &serde_json::to_string_pretty(&slo).expect("serve SLOs serialize"),
        );
        println!(
            "blessed serve SLOs: floor {:.0} sessions/hour, p99 ceiling {} ns, 0 aborts \
             ({} sessions x {} min)",
            slo.sessions_per_hour_floor,
            slo.p99_step_ns_ceiling,
            slo.blessed_sessions,
            slo.blessed_budget_minutes
        );
        return Ok(Vec::new());
    }

    let slo_path = results_dir().join("serve_slo.json");
    let slo_text = match std::fs::read_to_string(&slo_path) {
        Ok(t) => t,
        Err(_) => {
            println!(
                "serve SLO gate skipped: {} absent (bless with: \
                 cargo run --release -p mak-bench --bin regress -- --bless)",
                slo_path.display()
            );
            return Ok(Vec::new());
        }
    };
    let slo: ServeSlo = serde_json::from_str(&slo_text)
        .map_err(|e| format!("{} is not a valid serve SLO file: {e}", slo_path.display()))?;
    let findings = slo.check(&report);
    if findings.is_empty() {
        println!(
            "serve SLO gate passed: {:.0} sessions/hour >= {:.0}, \
             p99 {} ns <= {} ns, {} aborted",
            report.sessions_per_hour,
            slo.sessions_per_hour_floor,
            report.p99_step_ns,
            slo.p99_step_ns_ceiling,
            report.aborted
        );
    }
    Ok(findings)
}

/// The per-phase half of the gate. With `bless`, derives and writes
/// `results/phase_gate.json` from the current perf report's per-app
/// phase breakdown. Without, returns the share findings (empty = pass).
/// Mirrors [`serve_slo_gate`]: missing files skip with a note, corrupt
/// files are an `Err`, `MAK_PHASE_GATE=off` disables.
fn phase_gate(bless: bool) -> Result<Vec<String>, String> {
    if std::env::var("MAK_PHASE_GATE").map(|v| v == "off").unwrap_or(false) {
        println!("phase gate skipped (MAK_PHASE_GATE=off)");
        return Ok(Vec::new());
    }
    let report_path = results_dir().join("BENCH_perf.json");
    let text = match std::fs::read_to_string(&report_path) {
        Ok(t) => t,
        Err(_) => {
            println!(
                "phase gate skipped: {} absent (generate with: \
                 cargo run --release -p mak-bench --bin perf)",
                report_path.display()
            );
            return Ok(Vec::new());
        }
    };
    let view: PerfPhaseView = serde_json::from_str(&text)
        .map_err(|e| format!("{} is not a valid perf report: {e}", report_path.display()))?;

    if bless {
        let gate = PhaseGate::bless(&view);
        write_result(
            "phase_gate.json",
            &serde_json::to_string_pretty(&gate).expect("phase gate serializes"),
        );
        println!(
            "blessed per-phase share ceilings for {} apps ({} seeds x {} min)",
            gate.apps.len(),
            gate.blessed_seeds,
            gate.blessed_budget_minutes
        );
        return Ok(Vec::new());
    }

    let gate_path = results_dir().join("phase_gate.json");
    let gate_text = match std::fs::read_to_string(&gate_path) {
        Ok(t) => t,
        Err(_) => {
            println!(
                "phase gate skipped: {} absent (bless with: \
                 cargo run --release -p mak-bench --bin regress -- --bless)",
                gate_path.display()
            );
            return Ok(Vec::new());
        }
    };
    let gate: PhaseGate = serde_json::from_str(&gate_text)
        .map_err(|e| format!("{} is not a valid phase gate file: {e}", gate_path.display()))?;
    let findings = gate.check(&view);
    if findings.is_empty() {
        println!(
            "phase gate passed: {} apps within their blessed per-phase share ceilings",
            gate.apps.len()
        );
    }
    Ok(findings)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bless = args.iter().any(|a| a == "--bless");
    if args.iter().any(|a| a != "--bless") {
        eprintln!("usage: regress [--bless]");
        return ExitCode::FAILURE;
    }

    let config = GateConfig { seeds: gate_seeds(), budget_minutes: gate_budget_minutes() };
    let all = apps::all_names();
    let m = RunMatrix::new(all.iter().copied(), CRAWLER_NAMES.iter().copied(), config.seeds)
        .with_config(EngineConfig::with_budget_minutes(config.budget_minutes));
    mak_obs::progress!(
        "regress: {} runs ({} apps x {} crawlers x {} seeds, {} min) on {} threads",
        m.run_count(),
        all.len(),
        CRAWLER_NAMES.len(),
        config.seeds,
        config.budget_minutes,
        threads()
    );

    let store = store();
    let (cell_sink, cells_collected) = SharedSink::shared(VecSink::new());
    let reports = run_matrix_cached_observed(&m, threads(), &store, &cell_sink);
    let events =
        cells_collected.lock().unwrap_or_else(std::sync::PoisonError::into_inner).events().to_vec();
    let bench = measure(reports.iter().map(CellResult::from), events.iter(), config);

    write_result(
        "BENCH_coverage.json",
        &serde_json::to_string_pretty(&bench).expect("bench serializes"),
    );
    // Advisory only: wall time is run-dependent, so it lives on stderr
    // and never affects the exit code.
    mak_obs::progress!(
        "perf envelope (advisory): {} fresh cells, mean {:.1} ms/cell, {:.0} steps/s",
        bench.perf.fresh_cells,
        bench.perf.mean_wall_ms,
        bench.perf.mean_steps_per_sec
    );

    let baseline_path = results_dir().join("baselines.json");
    if bless {
        let base = Baselines::from_bench(&bench, Tolerances::default());
        write_result(
            "baselines.json",
            &serde_json::to_string_pretty(&base).expect("baselines serialize"),
        );
        println!(
            "blessed {} pairs, {} crawler regrets, {} steps/sec floors \
             (seeds={}, budget={} min)",
            base.pairs.len(),
            base.regret.len(),
            base.perf_floors.len(),
            base.config.seeds,
            base.config.budget_minutes
        );
        if let Err(e) = serve_slo_gate(true) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = phase_gate(true) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "cannot read {}: {e}\nbless initial baselines with: \
                 cargo run --release -p mak-bench --bin regress -- --bless",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let base: Baselines = match serde_json::from_str(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{} is not a valid baselines file: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };

    let mut findings = match compare(&bench, &base) {
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        Ok(findings) => findings,
    };
    match serve_slo_gate(false) {
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        Ok(serve_findings) => findings.extend(serve_findings),
    }
    match phase_gate(false) {
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        Ok(phase_findings) => findings.extend(phase_findings),
    }

    if findings.is_empty() {
        let checked_floors = bench
            .app_perf
            .iter()
            .filter(|p| base.perf_floors.iter().any(|f| f.app == p.app))
            .count();
        println!(
            "regression gate passed: {} pairs, {} crawler regrets, and {} of {} \
             steps/sec floors within tolerance",
            base.pairs.len(),
            base.regret.len(),
            checked_floors,
            base.perf_floors.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("regression gate FAILED with {} findings:", findings.len());
        for f in &findings {
            println!("  {f}");
        }
        ExitCode::FAILURE
    }
}
