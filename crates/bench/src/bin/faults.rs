//! Fault-rate ablation (extension): coverage and resilience as a function
//! of the injected fault rate, 0–20% of requests.
//!
//! The paper's testbed is a well-behaved lab deployment; production crawls
//! face flaky networks, rate limits, and expiring sessions. This ablation
//! sweeps the deterministic fault plan's uniform rate over every paper
//! crawler and asks two questions: does anyone *abort* (wedge before the
//! budget ends — a resilience bug, asserted here), and how gracefully does
//! coverage degrade as the web gets flakier?

use mak::spec::CRAWLER_NAMES;
use mak_bench::{budget_minutes, seeds, store, threads, write_result};
use mak_browser::fault::FaultPlan;
use mak_metrics::experiment::{run_matrix_cached, RunMatrix};
use mak_metrics::plot::{LineChart, Series};
use mak_metrics::report::{csv, markdown_table};
use mak_metrics::stats::mean;
use std::fmt::Write as _;

/// Uniform per-request fault rates swept (0 = the paper's clean testbed).
const RATES: &[f64] = &[0.0, 0.02, 0.05, 0.10, 0.20];
const APPS: &[&str] = &["phpbb2", "addressbook"];

fn main() {
    mak_obs::progress!(
        "faults: {} rates x {} apps x {} crawlers x {} seeds, {} threads",
        RATES.len(),
        APPS.len(),
        CRAWLER_NAMES.len(),
        seeds(),
        threads()
    );

    let cache = store();
    let budget_secs = budget_minutes() * 60.0;
    let mut coverage_rows = Vec::new();
    let mut stats_rows = Vec::new();
    let mut chart_series: Vec<(String, Vec<(f64, f64)>)> =
        CRAWLER_NAMES.iter().map(|c| ((*c).to_owned(), Vec::new())).collect();

    for &rate in RATES {
        let mut config = mak_bench::engine_config();
        config.faults = FaultPlan::uniform(rate);
        let matrix = RunMatrix::new(APPS.iter().copied(), CRAWLER_NAMES.iter().copied(), seeds())
            .with_config(config);
        let reports = run_matrix_cached(&matrix, threads(), &cache);

        // Resilience gate: every cell must use its whole budget — a crawl
        // that ends early wedged on faults instead of degrading gracefully.
        for r in &reports {
            assert!(
                r.elapsed_secs >= 0.9 * budget_secs,
                "{} on {} (seed {}) aborted at {:.0}s of {budget_secs:.0}s under rate {rate}",
                r.crawler,
                r.app,
                r.seed,
                r.elapsed_secs,
            );
        }

        let mut row = vec![format!("{:.0}%", 100.0 * rate)];
        for (i, crawler) in CRAWLER_NAMES.iter().enumerate() {
            let lines: Vec<f64> = reports
                .iter()
                .filter(|r| &r.crawler == crawler)
                .map(|r| r.final_lines_covered as f64)
                .collect();
            let m = mean(&lines);
            row.push(format!("{m:.0}"));
            chart_series[i].1.push((100.0 * rate, m));
        }
        coverage_rows.push(row);

        let cells = reports.len() as f64;
        let sum = |f: &dyn Fn(&mak_browser::fault::FaultStats) -> u64| -> f64 {
            reports.iter().map(|r| f(&r.faults) as f64).sum::<f64>() / cells
        };
        stats_rows.push(vec![
            format!("{:.0}%", 100.0 * rate),
            format!("{}", reports.len()),
            format!("{:.1}", sum(&|s| s.injected)),
            format!("{:.1}", sum(&|s| s.retries)),
            format!("{:.1}", sum(&|s| s.recoveries)),
            format!("{:.1}", sum(&|s| s.exhausted)),
            format!("{:.1}", sum(&|s| s.session_expiries)),
        ]);
    }

    let mut headers = vec!["fault rate"];
    headers.extend(CRAWLER_NAMES);
    let coverage_table = markdown_table(&headers, &coverage_rows);
    let stats_table = markdown_table(
        &[
            "fault rate",
            "completed cells",
            "injected/run",
            "retries/run",
            "recoveries/run",
            "exhausted/run",
            "expiries/run",
        ],
        &stats_rows,
    );

    let mut chart = LineChart::new(
        format!("Coverage vs fault rate — {} ({} seeds)", APPS.join("+"), seeds()),
        "uniform fault rate (%)",
        "mean server-side lines covered",
    );
    for (name, points) in chart_series {
        chart = chart.series(Series { name, points, band: vec![] });
    }
    write_result("faults.svg", &chart.to_svg());
    write_result("faults.csv", &csv(&headers, &coverage_rows));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fault-rate ablation on {} ({} seeds per cell, {:.0}-minute budget):\n",
        APPS.join(" + "),
        seeds(),
        budget_minutes()
    );
    let _ = writeln!(out, "Mean final coverage (lines) per crawler:\n\n{coverage_table}");
    let _ =
        writeln!(out, "Fault-layer activity, averaged over all cells of a rate:\n\n{stats_table}");
    let _ = writeln!(
        out,
        "Every cell above completed its full virtual budget (asserted at run time):\nno crawler aborts under any swept fault rate — coverage degrades, resilience does not."
    );
    println!("{out}");
    write_result("faults.md", &out);
}
