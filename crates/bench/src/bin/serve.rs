//! The serving-layer load generator: how many crawl sessions per hour
//! can one process sustain, and what does a virtual-clock step cost
//! under full multiplexing pressure?
//!
//! Submits `MAK_SERVE_SESSIONS` (default 100 000) concurrent sessions —
//! a mixed workload cycling apps and crawlers, every one in flight
//! before the drain starts — and runs them to the end of their
//! `MAK_SERVE_BUDGET_MINUTES` (default 0.5) virtual budget on
//! `MAK_THREADS` workers. Writes throughput (sessions/hour, steps/sec)
//! and wall-clock step-latency percentiles (p50/p99) to
//! `results/BENCH_serve.json`; the CI `serve-smoke` job runs a 1 000 ×
//! 2-minute variant and gates on zero aborted sessions.
//!
//! Latency numbers are wall-clock and therefore machine-dependent; the
//! session *outcomes* stay bit-deterministic (see
//! `crates/serve/tests/determinism.rs`), so this binary is a profiler,
//! not a results generator — nothing here feeds the paper tables.

use mak::framework::engine::EngineConfig;
use mak_bench::write_result;
use mak_serve::{CrawlService, ServiceConfig, SessionSpec, TenantQuota};
use serde::Serialize;
use std::time::Instant;

/// The `results/BENCH_serve.json` document.
#[derive(Debug, Serialize)]
struct ServeReport {
    /// Sessions submitted (all in flight simultaneously before draining).
    sessions: u64,
    /// Peak concurrent sessions (equals `sessions`: submit-then-drain).
    peak_in_flight: u64,
    threads: u64,
    steps_per_slice: u64,
    /// Virtual budget per session, minutes.
    budget_minutes: f64,
    /// Wall-clock seconds for the drain (excludes submission).
    drain_wall_secs: f64,
    /// Wall-clock seconds spent submitting (session construction).
    submit_wall_secs: f64,
    /// Completed sessions per wall-clock hour, from the drain phase.
    sessions_per_hour: f64,
    /// Virtual-clock steps executed across all sessions.
    total_steps: u64,
    /// Steps per wall-clock second across the drain.
    steps_per_sec: f64,
    /// Median wall-clock cost of one virtual step, nanoseconds.
    p50_step_ns: u64,
    /// 99th-percentile wall-clock cost of one virtual step, nanoseconds.
    p99_step_ns: u64,
    /// Sessions that panicked mid-step. Always 0 for in-tree crawlers;
    /// the CI smoke job gates on it.
    aborted: u64,
    /// Total interactions across all completed sessions (a cheap
    /// plausibility check that the sessions really crawled).
    total_interactions: u64,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let sessions = env_u64("MAK_SERVE_SESSIONS", 100_000);
    let budget_minutes = env_f64("MAK_SERVE_BUDGET_MINUTES", 0.5);
    let config = ServiceConfig {
        sample_latency: true,
        // One tenant holds every session, so the default quota must
        // clear the target concurrency.
        default_quota: TenantQuota::concurrent(usize::MAX),
        ..ServiceConfig::default()
    };
    let threads = config.threads as u64;
    let steps_per_slice = config.steps_per_slice as u64;
    mak_obs::progress!(
        "serve: {sessions} concurrent sessions x {budget_minutes} virtual minutes on {threads} threads"
    );

    // A mixed fleet: three apps of different sizes, three crawlers of
    // different policy costs, seeds all distinct.
    let apps = ["addressbook", "vanilla", "phpbb2"];
    let crawlers = ["mak", "bfs", "random"];
    let engine = EngineConfig::with_budget_minutes(budget_minutes);
    let mut service = CrawlService::new(config);

    let submit_started = Instant::now();
    for seed in 0..sessions {
        let spec = SessionSpec::new(
            "load",
            apps[(seed % apps.len() as u64) as usize],
            crawlers[((seed / apps.len() as u64) % crawlers.len() as u64) as usize],
            seed,
        )
        .config(engine.clone());
        service.submit(spec).expect("load tenant is unquotaed");
    }
    let submit_wall_secs = submit_started.elapsed().as_secs_f64();
    let peak_in_flight = service.in_flight() as u64;
    assert_eq!(peak_in_flight, sessions, "every session in flight before the drain");
    mak_obs::progress!(
        "serve: {peak_in_flight} sessions in flight ({submit_wall_secs:.1}s to build); draining"
    );

    let drain_started = Instant::now();
    let done = service.run_to_drain();
    let drain_wall_secs = drain_started.elapsed().as_secs_f64();

    assert_eq!(done.len() as u64 + service.aborted(), sessions);
    let latencies = service.last_latencies();
    let total_steps = latencies.total_steps();
    let report = ServeReport {
        sessions,
        peak_in_flight,
        threads,
        steps_per_slice,
        budget_minutes,
        drain_wall_secs,
        submit_wall_secs,
        sessions_per_hour: done.len() as f64 / (drain_wall_secs / 3600.0),
        total_steps,
        steps_per_sec: total_steps as f64 / drain_wall_secs,
        p50_step_ns: latencies.quantile_ns(0.50).unwrap_or(0),
        p99_step_ns: latencies.quantile_ns(0.99).unwrap_or(0),
        aborted: service.aborted(),
        total_interactions: done.iter().map(|c| c.report.interactions).sum(),
    };
    mak_obs::progress!(
        "serve: {} sessions in {:.1}s ({:.0} sessions/hour, {:.0} steps/s, p50 {}ns p99 {}ns, {} aborted)",
        done.len(),
        report.drain_wall_secs,
        report.sessions_per_hour,
        report.steps_per_sec,
        report.p50_step_ns,
        report.p99_step_ns,
        report.aborted
    );
    write_result(
        "BENCH_serve.json",
        &serde_json::to_string_pretty(&report).expect("serve report serializes"),
    );
}
