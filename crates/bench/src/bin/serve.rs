//! The serving-layer load generator: how many crawl sessions per hour
//! can one process sustain, and what does a virtual-clock step cost
//! under full multiplexing pressure?
//!
//! Submits `MAK_SERVE_SESSIONS` (default 100 000) concurrent sessions —
//! a mixed workload cycling apps and crawlers, every one in flight
//! before the drain starts — and runs them to the end of their
//! `MAK_SERVE_BUDGET_MINUTES` (default 0.5) virtual budget on
//! `MAK_THREADS` workers. Writes throughput (sessions/hour, steps/sec),
//! wall-clock step-latency percentiles (p50/p99), and a drain-progress
//! time-series to `results/BENCH_serve.json` (schema:
//! [`mak_bench::slo::ServeReport`]), plus the full Prometheus
//! exposition to `results/serve_metrics.prom` and the virtual-domain
//! snapshot — bit-identical across thread counts and schedule orders —
//! to `results/serve_metrics_virtual.json` (the CI `telemetry` job
//! byte-diffs it across `MAK_THREADS`). `MAK_SERVE_METRICS=off`
//! disables collection entirely, which is how the 5% overhead bound on
//! metrics is measured. The CI `serve-smoke` job runs a 1 000 ×
//! 2-minute variant and gates on zero aborted sessions; the `regress`
//! binary gates this report against blessed SLO floors
//! (`results/serve_slo.json`).
//!
//! Latency numbers are wall-clock and therefore machine-dependent; the
//! session *outcomes* stay bit-deterministic (see
//! `crates/serve/tests/determinism.rs`), so this binary is a profiler,
//! not a results generator — nothing here feeds the paper tables.

use mak::framework::engine::EngineConfig;
use mak_bench::slo::{RecoveryBench, ServeReport};
use mak_bench::write_result;
use mak_serve::{CrawlService, ServiceConfig, SessionSpec, TenantQuota};
use std::time::Instant;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let sessions = env_u64("MAK_SERVE_SESSIONS", 100_000);
    let budget_minutes = env_f64("MAK_SERVE_BUDGET_MINUTES", 0.5);
    let collect_metrics = std::env::var("MAK_SERVE_METRICS").map(|v| v != "off").unwrap_or(true);
    // `MAK_SERVE_CRASH_AT=N` switches the binary into recovery mode:
    // run N scheduler steps with cadence checkpointing on
    // (`MAK_SERVE_CKPT_EVERY` steps apart, default 8), drop the service
    // without draining — a simulated hard crash — then recover a fresh
    // service from disk and finish. Adds a `recovery` section to the
    // report; throughput numbers then cover only the post-crash drain.
    let crash_at = env_u64("MAK_SERVE_CRASH_AT", 0);
    let checkpoint_every_steps = env_u64("MAK_SERVE_CKPT_EVERY", 8);
    let ckpt_dir = std::env::temp_dir().join(format!("mak-serve-crash-{}", std::process::id()));
    if crash_at > 0 {
        let _ = std::fs::remove_dir_all(&ckpt_dir);
    }
    let config = ServiceConfig {
        sample_latency: true,
        collect_metrics,
        // Roughly 50 points across the drain, at least one per session.
        checkpoint_every: (sessions / 50).max(1),
        // One tenant holds every session, so the default quota must
        // clear the target concurrency.
        default_quota: TenantQuota::concurrent(usize::MAX),
        checkpoint_dir: (crash_at > 0).then(|| ckpt_dir.clone()),
        checkpoint_every_steps,
        ..ServiceConfig::default()
    };
    let threads = config.threads as u64;
    let steps_per_slice = config.steps_per_slice as u64;
    mak_obs::progress!(
        "serve: {sessions} concurrent sessions x {budget_minutes} virtual minutes on {threads} threads"
    );

    // A mixed fleet: three apps of different sizes, three crawlers of
    // different policy costs, seeds all distinct.
    let apps = ["addressbook", "vanilla", "phpbb2"];
    let crawlers = ["mak", "bfs", "random"];
    let engine = EngineConfig::with_budget_minutes(budget_minutes);
    let mut service = CrawlService::new(config.clone());

    let submit_started = Instant::now();
    for seed in 0..sessions {
        let spec = SessionSpec::new(
            "load",
            apps[(seed % apps.len() as u64) as usize],
            crawlers[((seed / apps.len() as u64) % crawlers.len() as u64) as usize],
            seed,
        )
        .config(engine.clone());
        service.submit(spec).expect("load tenant is unquotaed");
    }
    let submit_wall_secs = submit_started.elapsed().as_secs_f64();
    let peak_in_flight = service.in_flight() as u64;
    assert_eq!(peak_in_flight, sessions, "every session in flight before the drain");
    mak_obs::progress!(
        "serve: {peak_in_flight} sessions in flight ({submit_wall_secs:.1}s to build); draining"
    );

    let drain_started = Instant::now();
    let (done, recovery) = if crash_at > 0 {
        // Phase 1: run to the crash point, then drop the service with
        // no graceful drain — in-memory state is gone, exactly like a
        // kill. Only sessions whose cadence wrote a checkpoint survive.
        let before = service.run_for_steps(crash_at);
        let completed_before_crash = before.len() as u64;
        drop(service);
        mak_obs::progress!(
            "serve: simulated crash at {crash_at} steps ({completed_before_crash} already done); recovering"
        );

        // Phase 2: a fresh service recovers whatever reached disk.
        let recover_started = Instant::now();
        service = CrawlService::new(config.clone());
        let rec = service.recover().expect("recover from checkpoint dir");
        let recover_wall_secs = recover_started.elapsed().as_secs_f64();

        // Phase 3: drain the survivors to completion.
        let resume_started = Instant::now();
        let mut done = service.run_to_drain();
        let resume_drain_wall_secs = resume_started.elapsed().as_secs_f64();
        mak_obs::progress!(
            "serve: recovered {} sessions in {recover_wall_secs:.3}s, drained in {resume_drain_wall_secs:.1}s ({} lost, {} quarantined)",
            rec.restored,
            sessions - completed_before_crash - rec.restored,
            rec.corrupt_quarantined,
        );
        let recovery = RecoveryBench {
            crash_at_steps: crash_at,
            checkpoint_every_steps,
            completed_before_crash,
            restored: rec.restored,
            lost: sessions - completed_before_crash - rec.restored,
            corrupt_quarantined: rec.corrupt_quarantined,
            recover_wall_secs,
            resume_drain_wall_secs,
        };
        done.extend(before);
        (done, Some(recovery))
    } else {
        (service.run_to_drain(), None)
    };
    let drain_wall_secs = drain_started.elapsed().as_secs_f64();

    let lost = recovery.as_ref().map_or(0, |r| r.lost);
    assert_eq!(done.len() as u64 + service.aborted() + lost, sessions);
    let latencies = service.last_latencies();
    let total_steps = latencies.total_steps();
    let report = ServeReport {
        sessions,
        peak_in_flight,
        threads,
        steps_per_slice,
        budget_minutes,
        drain_wall_secs,
        submit_wall_secs,
        sessions_per_hour: done.len() as f64 / (drain_wall_secs / 3600.0),
        total_steps,
        steps_per_sec: total_steps as f64 / drain_wall_secs,
        p50_step_ns: latencies.quantile_ns(0.50).unwrap_or(0),
        p99_step_ns: latencies.quantile_ns(0.99).unwrap_or(0),
        aborted: service.aborted(),
        total_interactions: done.iter().map(|c| c.report.interactions).sum(),
        steals: service.metrics().registry().counter_total("mak_serve_scheduler_steals_total")
            as u64,
        queue_peak: service
            .metrics()
            .registry()
            .gauge_value("mak_serve_queue_depth_peak", &[])
            .unwrap_or(0.0) as u64,
        series: service.last_checkpoints().to_vec(),
        recovery,
    };
    mak_obs::progress!(
        "serve: {} sessions in {:.1}s ({:.0} sessions/hour, {:.0} steps/s, p50 {}ns p99 {}ns, {} aborted)",
        done.len(),
        report.drain_wall_secs,
        report.sessions_per_hour,
        report.steps_per_sec,
        report.p50_step_ns,
        report.p99_step_ns,
        report.aborted
    );
    write_result(
        "BENCH_serve.json",
        &serde_json::to_string_pretty(&report).expect("serve report serializes"),
    );
    if collect_metrics {
        let snapshot = service.metrics().snapshot();
        write_result("serve_metrics.prom", &snapshot.to_prometheus());
        write_result("serve_metrics_virtual.json", &service.metrics().virtual_snapshot().to_json());
    } else {
        mak_obs::progress!("serve: metrics collection off (MAK_SERVE_METRICS=off)");
    }
    if crash_at > 0 {
        let _ = std::fs::remove_dir_all(&ckpt_dir);
    }
}
