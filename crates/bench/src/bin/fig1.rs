//! Regenerates **Fig. 1**: the state-abstraction failures of WebExplor and
//! QExplore, demonstrated on the HotCRP and Drupal models.
//!
//! Top half (WebExplor on HotCRP): the same review page is linked under
//! several URLs differing only in redundant query parameters; exact URL
//! matching manufactures one state per alias.
//!
//! Bottom half (QExplore on Drupal): every submission of the shortcut form
//! appends a broken link, so the attribute-value hash allocates a fresh
//! state per submission, unboundedly.

use mak::framework::qcrawler::StateAbstraction;
use mak::qexplore::QExploreState;
use mak::webexplor::WebExplorState;
use mak_browser::client::Browser;
use mak_browser::clock::VirtualClock;
use mak_browser::page::Page;
use mak_websim::apps;
use mak_websim::dom::Interactable;
use mak_websim::server::AppHost;
use std::fmt::Write as _;

fn main() {
    let mut out = String::new();
    let _ = writeln!(out, "# Fig. 1 — state-abstraction limitation demos\n");

    // ---- Top: WebExplor's exact-URL matching on HotCRP aliases. ----
    let host = AppHost::new(apps::build("hotcrp").expect("hotcrp model"));
    let mut browser = Browser::new(host, VirtualClock::with_budget_minutes(30.0), 1);
    let hub = browser.navigate(&"http://hotcrp.local/paper/p0".parse().unwrap()).unwrap();

    // Collect groups of links sharing a path but differing in raw URL.
    let origin = browser.origin().clone();
    let mut by_path: std::collections::BTreeMap<String, Vec<String>> = Default::default();
    for el in hub.valid_interactables(&origin) {
        if let Interactable::Link { href, .. } = el {
            if href.path().starts_with("/paper/") {
                let urls = by_path.entry(href.path().to_owned()).or_default();
                let s = href.to_string();
                if !urls.contains(&s) {
                    urls.push(s);
                }
            }
        }
    }
    let (alias_path, alias_urls) = by_path
        .iter()
        .find(|(_, urls)| urls.len() >= 2)
        .map(|(p, u)| (p.clone(), u.clone()))
        .expect("an aliased paper page exists");

    let mut webexplor_states = WebExplorState::new();
    let mut rows = Vec::new();
    let mut titles = std::collections::BTreeSet::new();
    for url in &alias_urls {
        let page = browser.navigate(&url.parse().unwrap()).unwrap();
        titles.insert(page.title().to_owned());
        let state = webexplor_states.state_of(&page);
        rows.push(format!("  {url}  ->  WebExplor state #{state}"));
    }
    let _ = writeln!(out, "## WebExplor on HotCRP ({alias_path})\n");
    let _ = writeln!(
        out,
        "{} alias URLs all serve the same page ({} distinct title(s)):\n",
        alias_urls.len(),
        titles.len()
    );
    for r in &rows {
        let _ = writeln!(out, "{r}");
    }
    let _ = writeln!(
        out,
        "\n=> exact URL matching created {} states for 1 page.\n",
        webexplor_states.state_count()
    );
    assert_eq!(titles.len(), 1, "aliases must serve one page");
    assert_eq!(webexplor_states.state_count(), alias_urls.len());

    // ---- Bottom: QExplore's attribute-value hash on Drupal shortcuts. ----
    let host = AppHost::new(apps::build("drupal").expect("drupal model"));
    let mut browser = Browser::new(host, VirtualClock::with_budget_minutes(30.0), 1);
    let trap_url: mak_websim::url::Url = "http://drupal.local/shortcuts".parse().unwrap();
    let page0 = browser.navigate(&trap_url).unwrap();
    let form = page0
        .valid_interactables(browser.origin())
        .find(|i| matches!(i, Interactable::Form(_)))
        .cloned()
        .expect("shortcut form");

    let mut qexplore_states = QExploreState::new();
    let mut page: Page = page0;
    let _ = writeln!(out, "## QExplore on Drupal (/shortcuts)\n");
    for submission in 0..6 {
        let state = qexplore_states.state_of(&page);
        let _ = writeln!(
            out,
            "  after {submission} submissions: {} elements -> QExplore state #{state}",
            page.interactables().len()
        );
        page = browser.execute(&form).unwrap();
    }
    let _ = writeln!(
        out,
        "\n=> every form submission manufactured a new state ({} total); the added\n   links are broken (navigation errors), so none of these states helps\n   crawling.",
        qexplore_states.state_count()
    );
    assert_eq!(qexplore_states.state_count(), 6);

    // The broken links indeed 404.
    let broken = browser.navigate(&"http://drupal.local/shortcuts/go/s0".parse().unwrap()).unwrap();
    assert!(broken.is_error(), "shortcut links trigger navigation errors");

    println!("{out}");
    mak_bench::write_result("fig1.md", &out);
}
