//! Per-phase share gating: the phase-breakdown schema inside
//! `results/BENCH_perf.json` and the blessed per-phase share ceilings the
//! `regress` binary holds it to (`results/phase_gate.json`).
//!
//! The crawl engine attributes every virtual-clock charge to one leaf
//! phase (`mak_obs::span::PhaseTotals`), and the `perf` binary folds the
//! per-cell breakdowns into per-app totals. This gate pins each app's
//! per-phase *share* of virtual time: a cost-model edit that silently
//! doubles policy overhead, or a retry loop that starts burning the
//! budget in backoff, moves a share past its blessed ceiling and fails
//! `regress` — even when coverage happens to survive. Shares are
//! virtual-domain and therefore deterministic, so the headroom
//! ([`REL_HEADROOM`] / [`ABS_SLACK`]) guards against intentional
//! calibration drift, not machine noise. Bless after such a change:
//!
//! ```text
//! cargo run --release -p mak-bench --bin perf      # writes BENCH_perf.json
//! cargo run --release -p mak-bench --bin regress -- --bless
//! ```

use mak_obs::span::{Phase, PhaseTotals};
use serde::{Deserialize, Serialize};

/// The slice of `results/BENCH_perf.json` the gate reads — unknown
/// fields (cells, cache, profile) are ignored by the deserializer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfPhaseView {
    /// Virtual budget per run, minutes.
    pub budget_minutes: f64,
    /// Seeds per (app, crawler) pair.
    pub seeds: u64,
    /// Per-app phase totals summed over the matrix.
    pub phase_by_app: Vec<AppPhases>,
}

/// One app's phase breakdown, as written by the `perf` binary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppPhases {
    /// Application identifier.
    pub app: String,
    /// Virtual-time totals summed over every crawler and seed.
    pub phase: PhaseTotals,
}

/// Multiplicative headroom applied to each measured share when blessing.
pub const REL_HEADROOM: f64 = 1.25;

/// Absolute slack added on top, so near-zero shares (backoff without a
/// fault plan) don't bless a zero ceiling that any future epsilon trips.
pub const ABS_SLACK: f64 = 0.02;

/// Blessed per-app, per-phase share ceilings (`results/phase_gate.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseGate {
    /// The workload the ceilings were blessed under — a differently-sized
    /// run refuses to compare instead of reporting phantom drift.
    pub blessed_seeds: u64,
    /// Virtual budget per run the ceilings were blessed under.
    pub blessed_budget_minutes: f64,
    /// One ceiling row per app, sorted by app name.
    pub apps: Vec<AppPhaseCeilings>,
}

/// Per-phase share ceilings for one app, in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppPhaseCeilings {
    /// Application identifier.
    pub app: String,
    /// Ceiling on the `PolicyChoose` share of virtual time.
    pub policy: f64,
    /// Ceiling on the `Render` share.
    pub render: f64,
    /// Ceiling on the `Think` share.
    pub think: f64,
    /// Ceiling on the `ExtractInteractables` share.
    pub extract: f64,
    /// Ceiling on the `Backoff` share.
    pub backoff: f64,
}

/// `min(1, share * headroom + slack)` — the blessed ceiling for one
/// measured share.
fn ceiling(share: f64) -> f64 {
    (share * REL_HEADROOM + ABS_SLACK).min(1.0)
}

impl PhaseGate {
    /// Derives blessed ceilings from one measured perf report.
    pub fn bless(view: &PerfPhaseView) -> Self {
        let mut apps: Vec<AppPhaseCeilings> = view
            .phase_by_app
            .iter()
            .map(|row| AppPhaseCeilings {
                app: row.app.clone(),
                policy: ceiling(row.phase.share(Phase::PolicyChoose)),
                render: ceiling(row.phase.share(Phase::Render)),
                think: ceiling(row.phase.share(Phase::Think)),
                extract: ceiling(row.phase.share(Phase::ExtractInteractables)),
                backoff: ceiling(row.phase.share(Phase::Backoff)),
            })
            .collect();
        apps.sort_by(|a, b| a.app.cmp(&b.app));
        PhaseGate { blessed_seeds: view.seeds, blessed_budget_minutes: view.budget_minutes, apps }
    }

    /// Gates `view` against the blessed ceilings. Returns one finding per
    /// violated ceiling (empty = pass). Apps present in the report but
    /// never blessed pass with no finding — bless picks them up; blessed
    /// apps missing from the report fire, since a silently dropped app is
    /// exactly the kind of drift the gate exists to catch.
    pub fn check(&self, view: &PerfPhaseView) -> Vec<String> {
        let mut findings = Vec::new();
        if view.seeds != self.blessed_seeds || view.budget_minutes != self.blessed_budget_minutes {
            findings.push(format!(
                "phase gate: workload mismatch — blessed under {} seeds x {} min, \
                 measured {} seeds x {} min (re-bless or match the workload)",
                self.blessed_seeds, self.blessed_budget_minutes, view.seeds, view.budget_minutes
            ));
            return findings;
        }
        for blessed in &self.apps {
            let Some(row) = view.phase_by_app.iter().find(|r| r.app == blessed.app) else {
                findings.push(format!(
                    "phase gate: app `{}` has blessed ceilings but no measured breakdown",
                    blessed.app
                ));
                continue;
            };
            let checks = [
                (Phase::PolicyChoose, blessed.policy),
                (Phase::Render, blessed.render),
                (Phase::Think, blessed.think),
                (Phase::ExtractInteractables, blessed.extract),
                (Phase::Backoff, blessed.backoff),
            ];
            for (phase, ceiling) in checks {
                let share = row.phase.share(phase);
                if share > ceiling {
                    findings.push(format!(
                        "phase gate: {}/{phase} share {:.1}% exceeds its blessed \
                         ceiling {:.1}%",
                        blessed.app,
                        100.0 * share,
                        100.0 * ceiling
                    ));
                }
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view() -> PerfPhaseView {
        PerfPhaseView {
            budget_minutes: 5.0,
            seeds: 2,
            phase_by_app: vec![
                AppPhases {
                    app: "addressbook".into(),
                    phase: PhaseTotals {
                        policy_ms: 100.0,
                        render_ms: 400.0,
                        think_ms: 300.0,
                        extract_ms: 200.0,
                        backoff_ms: 0.0,
                    },
                },
                AppPhases {
                    app: "drupal".into(),
                    phase: PhaseTotals {
                        policy_ms: 50.0,
                        render_ms: 600.0,
                        think_ms: 250.0,
                        extract_ms: 100.0,
                        backoff_ms: 0.0,
                    },
                },
            ],
        }
    }

    #[test]
    fn blessed_report_passes_its_own_gate() {
        let v = view();
        let gate = PhaseGate::bless(&v);
        assert!(gate.check(&v).is_empty());
        assert_eq!(gate.apps.len(), 2);
        assert_eq!(gate.apps[0].app, "addressbook", "rows are sorted by app");
    }

    #[test]
    fn a_share_past_its_ceiling_fires_one_finding() {
        let v = view();
        let mut gate = PhaseGate::bless(&v);
        // Hand-bump: tighten drupal's render ceiling below its measured
        // ~46% share.
        let drupal = gate.apps.iter_mut().find(|a| a.app == "drupal").unwrap();
        drupal.render = 0.10;
        let findings = gate.check(&v);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("drupal/Render"));
        // Re-blessing restores the pass.
        assert!(PhaseGate::bless(&v).check(&v).is_empty());
    }

    #[test]
    fn zero_shares_bless_a_nonzero_ceiling() {
        // Without a fault plan the backoff share is exactly 0; the
        // absolute slack keeps the ceiling permissive enough that float
        // epsilon never trips it.
        let gate = PhaseGate::bless(&view());
        assert!(gate.apps.iter().all(|a| a.backoff >= ABS_SLACK));
    }

    #[test]
    fn workload_mismatch_refuses_to_compare() {
        let gate = PhaseGate::bless(&view());
        let mut other = view();
        other.seeds = 10;
        let findings = gate.check(&other);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].contains("workload mismatch"));
    }

    #[test]
    fn a_blessed_app_missing_from_the_report_fires() {
        let gate = PhaseGate::bless(&view());
        let mut other = view();
        other.phase_by_app.retain(|r| r.app != "drupal");
        let findings = gate.check(&other);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].contains("no measured breakdown"));
    }

    #[test]
    fn gate_round_trips_through_json() {
        let gate = PhaseGate::bless(&view());
        let json = serde_json::to_string_pretty(&gate).unwrap();
        let back: PhaseGate = serde_json::from_str(&json).unwrap();
        assert_eq!(back, gate);
    }
}
