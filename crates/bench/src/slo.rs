//! Serving-layer SLOs: the schema of `results/BENCH_serve.json` and the
//! blessed floors the `regress` binary gates it against.
//!
//! The coverage gate ([`gate`](crate::gate)) protects the paper's
//! deterministic claims; this module protects the *service*: completed
//! sessions per hour must not collapse, the p99 wall-clock step latency
//! must stay inside its envelope, and no session may abort. Wall-clock
//! numbers are machine-dependent, so the blessed bounds carry generous
//! fractional headroom ([`FLOOR_FRACTION`] / [`CEILING_FACTOR`]) — the
//! gate catches order-of-magnitude regressions (a lock on the hot path,
//! an accidental per-step allocation), not single-digit noise. Bless on
//! the machine that runs the gate:
//!
//! ```text
//! cargo run --release -p mak-bench --bin serve     # writes BENCH_serve.json
//! cargo run --release -p mak-bench --bin regress -- --bless
//! ```

use mak_serve::Checkpoint;
use serde::{Deserialize, Serialize};

/// The `results/BENCH_serve.json` document (written by the `serve`
/// binary, read back by `regress`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeReport {
    /// Sessions submitted (all in flight simultaneously before draining).
    pub sessions: u64,
    /// Peak concurrent sessions (equals `sessions`: submit-then-drain).
    pub peak_in_flight: u64,
    /// Worker threads used for the drain.
    pub threads: u64,
    /// Steps per scheduling quantum.
    pub steps_per_slice: u64,
    /// Virtual budget per session, minutes.
    pub budget_minutes: f64,
    /// Wall-clock seconds for the drain (excludes submission).
    pub drain_wall_secs: f64,
    /// Wall-clock seconds spent submitting (session construction).
    pub submit_wall_secs: f64,
    /// Completed sessions per wall-clock hour, from the drain phase.
    pub sessions_per_hour: f64,
    /// Virtual-clock steps executed across all sessions.
    pub total_steps: u64,
    /// Steps per wall-clock second across the drain.
    pub steps_per_sec: f64,
    /// Median wall-clock cost of one virtual step, nanoseconds.
    pub p50_step_ns: u64,
    /// 99th-percentile wall-clock cost of one virtual step, nanoseconds.
    pub p99_step_ns: u64,
    /// Sessions that panicked mid-step. Always 0 for in-tree crawlers.
    pub aborted: u64,
    /// Total interactions across all completed sessions (a cheap
    /// plausibility check that the sessions really crawled).
    pub total_interactions: u64,
    /// Work-stealing operations during the drain.
    pub steals: u64,
    /// High-water mark of observed scheduler queue depth.
    pub queue_peak: u64,
    /// Drain progress time-series: one point per
    /// `checkpoint_every` completions (wall-clock domain).
    pub series: Vec<Checkpoint>,
    /// Crash-recovery cycle measurements — present only when the serve
    /// binary ran with `MAK_SERVE_CRASH_AT` (absent fields deserialize
    /// to `None`, so reports from before this field remain readable).
    pub recovery: Option<RecoveryBench>,
}

/// One measured crash-recovery cycle: the serve binary ran the workload
/// to `MAK_SERVE_CRASH_AT` scheduler steps with cadence checkpointing
/// on, dropped the service without draining (a simulated hard crash),
/// then recovered a fresh service from the on-disk checkpoints and ran
/// the survivors to completion. Wall-clock numbers are machine-dependent
/// and never SLO-gated; session outcomes stay bit-deterministic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryBench {
    /// Scheduler steps executed before the simulated crash.
    pub crash_at_steps: u64,
    /// Cadence: steps a session runs between checkpoint writes.
    pub checkpoint_every_steps: u64,
    /// Sessions that finished before the crash point.
    pub completed_before_crash: u64,
    /// Sessions re-admitted from on-disk checkpoints.
    pub restored: u64,
    /// Sessions lost to the crash (in flight, never checkpointed —
    /// the loss window the cadence bounds).
    pub lost: u64,
    /// Checkpoint files quarantined as unreadable during recovery.
    pub corrupt_quarantined: u64,
    /// Wall-clock seconds to scan, decode, and re-admit every
    /// checkpoint — the recovery latency.
    pub recover_wall_secs: f64,
    /// Wall-clock seconds to drain the recovered sessions to completion.
    pub resume_drain_wall_secs: f64,
}

/// Fraction of the blessed sessions/hour kept as the floor: the gate
/// fires below 20% of the blessed throughput (a 5× collapse), never on
/// machine-to-machine variance.
pub const FLOOR_FRACTION: f64 = 0.2;

/// Multiple of the blessed p99 step latency kept as the ceiling.
pub const CEILING_FACTOR: f64 = 5.0;

/// Minimum p99 ceiling, nanoseconds — tiny blessed runs quantize to a
/// few nanoseconds per step, and 5× of almost-nothing is still noise.
pub const MIN_P99_CEILING_NS: u64 = 50_000;

/// Blessed serving-layer service-level objectives
/// (`results/serve_slo.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeSlo {
    /// Completed sessions per wall-clock hour must stay at or above this.
    pub sessions_per_hour_floor: f64,
    /// p99 wall-clock nanoseconds per step must stay at or below this.
    pub p99_step_ns_ceiling: u64,
    /// Aborted sessions must stay at or below this (blessed at zero).
    pub max_aborted: u64,
    /// The workload the bounds were blessed under — a differently-sized
    /// run refuses to compare instead of reporting phantom drift.
    pub blessed_sessions: u64,
    /// Virtual budget per session the bounds were blessed under.
    pub blessed_budget_minutes: f64,
}

impl ServeSlo {
    /// Derives blessed bounds from one measured report.
    pub fn bless(report: &ServeReport) -> Self {
        ServeSlo {
            sessions_per_hour_floor: report.sessions_per_hour * FLOOR_FRACTION,
            p99_step_ns_ceiling: (((report.p99_step_ns as f64) * CEILING_FACTOR) as u64)
                .max(MIN_P99_CEILING_NS),
            max_aborted: 0,
            blessed_sessions: report.sessions,
            blessed_budget_minutes: report.budget_minutes,
        }
    }

    /// Gates `report` against the blessed bounds. Returns one finding
    /// per violated objective; empty means the gate passes.
    pub fn check(&self, report: &ServeReport) -> Vec<String> {
        let mut findings = Vec::new();
        if report.sessions != self.blessed_sessions
            || report.budget_minutes != self.blessed_budget_minutes
        {
            findings.push(format!(
                "serve SLO: workload mismatch — blessed under {} sessions x {} min, \
                 measured {} sessions x {} min (re-bless or match the workload)",
                self.blessed_sessions,
                self.blessed_budget_minutes,
                report.sessions,
                report.budget_minutes
            ));
            return findings;
        }
        if report.sessions_per_hour < self.sessions_per_hour_floor {
            findings.push(format!(
                "serve SLO: throughput collapsed — {:.0} sessions/hour, floor {:.0}",
                report.sessions_per_hour, self.sessions_per_hour_floor
            ));
        }
        if report.p99_step_ns > self.p99_step_ns_ceiling {
            findings.push(format!(
                "serve SLO: p99 step latency blew its envelope — {} ns, ceiling {} ns",
                report.p99_step_ns, self.p99_step_ns_ceiling
            ));
        }
        if report.aborted > self.max_aborted {
            findings.push(format!(
                "serve SLO: {} aborted sessions (max {})",
                report.aborted, self.max_aborted
            ));
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ServeReport {
        ServeReport {
            sessions: 1_000,
            peak_in_flight: 1_000,
            threads: 8,
            steps_per_slice: 64,
            budget_minutes: 0.5,
            drain_wall_secs: 10.0,
            submit_wall_secs: 1.0,
            sessions_per_hour: 360_000.0,
            total_steps: 1_000_000,
            steps_per_sec: 100_000.0,
            p50_step_ns: 4_000,
            p99_step_ns: 40_000,
            aborted: 0,
            total_interactions: 50_000,
            steals: 12,
            queue_peak: 1_000,
            series: vec![Checkpoint { wall_secs: 5.0, sessions_done: 500, steps_done: 500_000 }],
            recovery: None,
        }
    }

    #[test]
    fn blessed_report_passes_its_own_gate() {
        let r = report();
        let slo = ServeSlo::bless(&r);
        assert!(slo.check(&r).is_empty());
        assert_eq!(slo.max_aborted, 0);
        assert_eq!(slo.sessions_per_hour_floor, 72_000.0);
        assert_eq!(slo.p99_step_ns_ceiling, 200_000);
    }

    #[test]
    fn collapse_latency_and_aborts_each_fire_a_finding() {
        let blessed = report();
        let slo = ServeSlo::bless(&blessed);
        let mut bad = report();
        bad.sessions_per_hour = slo.sessions_per_hour_floor / 2.0;
        bad.p99_step_ns = slo.p99_step_ns_ceiling + 1;
        bad.aborted = 3;
        let findings = slo.check(&bad);
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings[0].contains("throughput collapsed"));
        assert!(findings[1].contains("p99"));
        assert!(findings[2].contains("aborted"));
    }

    #[test]
    fn workload_mismatch_refuses_to_compare() {
        let slo = ServeSlo::bless(&report());
        let mut other = report();
        other.sessions = 10;
        let findings = slo.check(&other);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].contains("workload mismatch"));
    }

    #[test]
    fn tiny_blessed_latencies_keep_a_sane_ceiling() {
        let mut fast = report();
        fast.p99_step_ns = 100;
        let slo = ServeSlo::bless(&fast);
        assert_eq!(slo.p99_step_ns_ceiling, MIN_P99_CEILING_NS);
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: ServeReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.series, r.series);
        assert_eq!(back.sessions_per_hour, r.sessions_per_hour);
    }
}
