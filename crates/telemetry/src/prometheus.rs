//! Prometheus text exposition (version 0.0.4) rendering.
//!
//! One `# HELP`/`# TYPE` header per family, one line per sample;
//! histograms expand into cumulative `_bucket` lines (with the implicit
//! `+Inf` bucket) plus `_sum` and `_count`. Rendering is a pure function
//! of the snapshot, so equal snapshots yield byte-identical text.

use crate::snapshot::{FamilySnapshot, Label, MetricsSnapshot, SampleSnapshot};
use std::fmt::Write;

/// Renders a snapshot in text exposition format.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for family in &snapshot.families {
        render_family(&mut out, family);
    }
    out
}

fn render_family(out: &mut String, family: &FamilySnapshot) {
    if !family.help.is_empty() {
        let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
    }
    let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind);
    for sample in &family.samples {
        if family.kind == "histogram" {
            render_histogram(out, family, sample);
        } else {
            let _ = writeln!(
                out,
                "{}{} {}",
                family.name,
                label_block(&sample.labels, None),
                fmt_value(sample.value)
            );
        }
    }
}

fn render_histogram(out: &mut String, family: &FamilySnapshot, sample: &SampleSnapshot) {
    for (bound, cumulative) in family.buckets.iter().zip(&sample.bucket_counts) {
        let le = fmt_value(*bound);
        let _ = writeln!(
            out,
            "{}_bucket{} {}",
            family.name,
            label_block(&sample.labels, Some(&le)),
            cumulative
        );
    }
    let _ = writeln!(
        out,
        "{}_bucket{} {}",
        family.name,
        label_block(&sample.labels, Some("+Inf")),
        sample.count
    );
    let _ = writeln!(
        out,
        "{}_sum{} {}",
        family.name,
        label_block(&sample.labels, None),
        fmt_value(sample.sum)
    );
    let _ = writeln!(
        out,
        "{}_count{} {}",
        family.name,
        label_block(&sample.labels, None),
        sample.count
    );
}

/// Renders `{k="v",...}` (with an optional trailing `le`), or nothing for
/// an unlabeled sample.
fn label_block(labels: &[Label], le: Option<&str>) -> String {
    let mut parts: Vec<String> =
        labels.iter().map(|l| format!("{}=\"{}\"", l.key, escape_value(&l.value))).collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{}\"", escape_value(le)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Label-value escaping: backslash, double quote, and newline.
fn escape_value(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Help-text escaping: backslash and newline (quotes are legal there).
fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// `f64` via `Display`: shortest round-trip form, integral values render
/// without a trailing `.0` — both deterministic.
fn fmt_value(value: f64) -> String {
    format!("{value}")
}

#[cfg(test)]
mod tests {
    use crate::registry::{Domain, MetricsRegistry};

    #[test]
    fn counters_and_gauges_render_with_labels() {
        let mut reg = MetricsRegistry::new();
        reg.register_counter("hits_total", Domain::Virtual, "cache hits");
        reg.inc("hits_total", &[("app", "phpbb2"), ("crawler", "mak")], 7);
        reg.register_gauge("depth", Domain::Wall, "");
        reg.set_gauge("depth", &[], 3.5);
        let text = reg.snapshot().to_prometheus();
        assert_eq!(
            text,
            "# TYPE depth gauge\n\
             depth 3.5\n\
             # HELP hits_total cache hits\n\
             # TYPE hits_total counter\n\
             hits_total{app=\"phpbb2\",crawler=\"mak\"} 7\n"
        );
    }

    #[test]
    fn histograms_expand_buckets_sum_count() {
        let mut reg = MetricsRegistry::new();
        reg.register_histogram("lat_ns", Domain::Wall, "latency", &[100.0, 1000.0]);
        reg.observe("lat_ns", &[("app", "a")], 50.0);
        reg.observe("lat_ns", &[("app", "a")], 5000.0);
        let text = reg.snapshot().to_prometheus();
        assert_eq!(
            text,
            "# HELP lat_ns latency\n\
             # TYPE lat_ns histogram\n\
             lat_ns_bucket{app=\"a\",le=\"100\"} 1\n\
             lat_ns_bucket{app=\"a\",le=\"1000\"} 1\n\
             lat_ns_bucket{app=\"a\",le=\"+Inf\"} 2\n\
             lat_ns_sum{app=\"a\"} 5050\n\
             lat_ns_count{app=\"a\"} 2\n"
        );
    }

    /// Decodes a label value per the text-format 0.0.4 rules — the
    /// inverse a scraper applies to `\\`, `\"`, and `\n`.
    fn unescape(escaped: &str) -> String {
        let mut out = String::with_capacity(escaped.len());
        let mut chars = escaped.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some(other) => panic!("invalid escape \\{other} in {escaped:?}"),
                None => panic!("dangling backslash in {escaped:?}"),
            }
        }
        out
    }

    #[test]
    fn hostile_label_values_round_trip() {
        // Every hostile value must render to a single well-formed sample
        // line whose quoted block decodes back to the original bytes.
        let hostile = [
            "plain",
            "back\\slash",
            "quo\"te",
            "new\nline",
            "\\",
            "\"",
            "\n",
            "\\n",
            "a\\\"b",
            "trailing\\",
            "\\\\\"\nmixed",
            "already\\nescaped\\\\looking",
        ];
        for value in hostile {
            let mut reg = MetricsRegistry::new();
            reg.register_counter("c_total", Domain::Virtual, "");
            reg.inc("c_total", &[("v", value)], 1);
            let text = reg.snapshot().to_prometheus();
            let line = text
                .lines()
                .find(|l| l.starts_with("c_total{"))
                .unwrap_or_else(|| panic!("no sample line for {value:?} in {text:?}"));
            assert!(line.ends_with("} 1"), "line stays parseable: {line:?}");
            let start = line.find('"').expect("opening quote") + 1;
            let end = line.rfind('"').expect("closing quote");
            let escaped = &line[start..end];
            assert!(!escaped.contains('\n'), "raw newline would split the line");
            assert_eq!(unescape(escaped), value, "round trip of {escaped:?}");
        }
    }

    #[test]
    fn hostile_values_in_histogram_labels_round_trip() {
        // The histogram expansion repeats the label block four ways
        // (`_bucket` x2, `_sum`, `_count`); each copy must decode.
        let value = "p99 \"goal\"\nwith \\ slash";
        let mut reg = MetricsRegistry::new();
        reg.register_histogram("h_ms", Domain::Virtual, "", &[10.0]);
        reg.observe("h_ms", &[("tier", value)], 3.0);
        let text = reg.snapshot().to_prometheus();
        let sample_lines: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(sample_lines.len(), 4, "{text:?}");
        for line in sample_lines {
            let start = line.find("tier=\"").expect("tier label") + "tier=\"".len();
            let rest = &line[start..];
            // The value ends at the first unescaped quote.
            let mut end = None;
            let bytes = rest.as_bytes();
            let mut i = 0;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        end = Some(i);
                        break;
                    }
                    _ => i += 1,
                }
            }
            let escaped = &rest[..end.expect("closing quote")];
            assert_eq!(unescape(escaped), value, "in line {line:?}");
        }
    }

    #[test]
    fn label_values_are_escaped() {
        let mut reg = MetricsRegistry::new();
        reg.register_counter("c", Domain::Virtual, "multi\nline \\ help");
        reg.inc("c", &[("tenant", "a\"b\\c\nd")], 1);
        let text = reg.snapshot().to_prometheus();
        assert_eq!(
            text,
            "# HELP c multi\\nline \\\\ help\n\
             # TYPE c counter\n\
             c{tenant=\"a\\\"b\\\\c\\nd\"} 1\n"
        );
    }
}
