//! Point-in-time snapshots of a registry: plain serde-friendly structs,
//! rendered as JSON or Prometheus text exposition.
//!
//! A snapshot is fully ordered — families by name, samples by label set —
//! so two registries with equal contents render byte-identical documents.
//! That is what lets CI diff virtual-domain snapshots across thread
//! counts instead of parsing and comparing them field by field.

use serde::{Deserialize, Serialize};

/// One `key="value"` label.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Label {
    /// Label name (e.g. `tenant`, `app`, `crawler`).
    pub key: String,
    /// Label value.
    pub value: String,
}

/// One labeled sample. Counters and gauges use [`value`]; histograms use
/// [`bucket_counts`]/[`sum`]/[`count`] (and leave `value` at zero).
///
/// [`value`]: SampleSnapshot::value
/// [`bucket_counts`]: SampleSnapshot::bucket_counts
/// [`sum`]: SampleSnapshot::sum
/// [`count`]: SampleSnapshot::count
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleSnapshot {
    /// The sample's label set, sorted by key.
    pub labels: Vec<Label>,
    /// Counter or gauge value.
    pub value: f64,
    /// Cumulative observations per declared histogram bound.
    pub bucket_counts: Vec<u64>,
    /// Histogram sum of observations.
    pub sum: f64,
    /// Histogram observation count.
    pub count: u64,
}

/// One metric family: metadata plus every labeled sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilySnapshot {
    /// Metric name (e.g. `mak_serve_steps_total`).
    pub name: String,
    /// Help text for the `# HELP` line.
    pub help: String,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: String,
    /// `"virtual"` or `"wall"` — which clock the family belongs to.
    pub domain: String,
    /// Histogram upper bounds (empty for counters and gauges).
    pub buckets: Vec<f64>,
    /// Samples, ordered by label set.
    pub samples: Vec<SampleSnapshot>,
}

/// A full registry snapshot: ordered families, ordered samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Families, ordered by name.
    pub families: Vec<FamilySnapshot>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a pretty-printed JSON document (ends with
    /// a newline).
    pub fn to_json(&self) -> String {
        let mut out = serde_json::to_string_pretty(self).expect("snapshot serializes");
        out.push('\n');
        out
    }

    /// Renders the snapshot in Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        crate::prometheus::render(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            families: vec![FamilySnapshot {
                name: "steps_total".into(),
                help: "total steps".into(),
                kind: "counter".into(),
                domain: "virtual".into(),
                buckets: Vec::new(),
                samples: vec![SampleSnapshot {
                    labels: vec![Label { key: "app".into(), value: "phpbb2".into() }],
                    value: 42.0,
                    bucket_counts: Vec::new(),
                    sum: 0.0,
                    count: 0,
                }],
            }],
        }
    }

    #[test]
    fn json_round_trips() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        assert!(json.ends_with('\n'));
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn equal_snapshots_render_identically() {
        let a = sample_snapshot();
        let b = sample_snapshot();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_prometheus(), b.to_prometheus());
    }
}
