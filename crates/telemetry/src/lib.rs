//! # mak-telemetry — a deterministic metrics registry
//!
//! The serving layer (`mak-serve`) multiplexes a hundred thousand crawl
//! sessions over a work-stealing scheduler; the bench binaries run grid
//! cells over a content-addressed run cache. Both need cumulative
//! counters — "how many sessions did tenant X finish", "how often did
//! the cache hit", "how much virtual time did fault backoff burn" — and
//! both live under the repository's central invariant: results are pure
//! functions of `(app, crawler, seed, config)`.
//!
//! This crate therefore splits every metric into one of two **clock
//! domains**, following the `Event::CellFinished` precedent (the one
//! wall-clock field in the `mak-obs` taxonomy):
//!
//! - [`Domain::Virtual`] — quantities derived from session *outcomes*
//!   (steps, interactions, coverage, faults, quota decisions). Folded in
//!   a deterministic order — the serving layer merges per-worker results
//!   in session-id order — these snapshots are **bit-identical** across
//!   `MAK_THREADS`, scheduler disciplines, and reruns, and may be diffed
//!   byte-for-byte in CI.
//! - [`Domain::Wall`] — host-time quantities (step latency, drain
//!   durations, steal counts, queue depths). Machine- and
//!   schedule-dependent; excluded from deterministic artifacts by
//!   [`MetricsRegistry::snapshot_virtual`].
//!
//! The registry offers three metric kinds — monotone counters, gauges,
//! and fixed-bucket histograms — each labeled by an ordered label set
//! (tenant, app, crawler, …). Snapshots render as Prometheus text
//! exposition ([`MetricsSnapshot::to_prometheus`]) or a JSON document
//! ([`MetricsSnapshot::to_json`]).
//!
//! ## Zero cost by default
//!
//! Emitters that only *sometimes* report — the run cache, optional
//! engine-side probes — take a [`TelemetryHandle`], mirroring the
//! `SinkHandle` design in `mak-obs`: the default handle is inert and
//! every update is a skipped branch, so a handle-carrying hot path costs
//! nothing when nobody is listening.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod prometheus;
pub mod registry;
pub mod snapshot;

pub use registry::{Domain, HistogramValue, MetricKind, MetricsRegistry, TelemetryHandle};
pub use snapshot::{FamilySnapshot, Label, MetricsSnapshot, SampleSnapshot};
