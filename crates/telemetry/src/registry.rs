//! The registry: metric families, labeled samples, and the inert-by-default
//! handle.

use crate::snapshot::{FamilySnapshot, Label, MetricsSnapshot, SampleSnapshot};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Which clock a metric belongs to (see the [crate docs](crate)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Derived from virtual-clock session outcomes; snapshots are
    /// bit-identical across thread counts, schedules, and reruns.
    Virtual,
    /// Wall-clock / schedule-dependent; excluded from deterministic
    /// artifacts.
    Wall,
}

impl Domain {
    /// The snapshot tag: `"virtual"` or `"wall"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Domain::Virtual => "virtual",
            Domain::Wall => "wall",
        }
    }
}

/// The three metric kinds, mirroring Prometheus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotone cumulative sum.
    Counter,
    /// A value that can move both ways (depths, in-flight counts).
    Gauge,
    /// A fixed-bucket distribution with sum and count.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` tag.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One histogram sample: cumulative bucket counts (one per declared upper
/// bound; the implicit `+Inf` bucket is [`HistogramValue::count`]), plus
/// the sum and count of observations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramValue {
    /// Observations ≤ each declared upper bound, cumulative.
    pub bucket_counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: f64,
    /// Number of observations (the implicit `+Inf` bucket).
    pub count: u64,
}

/// A sample's value, by kind.
#[derive(Debug, Clone, PartialEq)]
enum SampleValue {
    Counter(f64),
    Gauge(f64),
    Histogram(HistogramValue),
}

/// Canonical label storage: sorted by key, so `[("b","2"),("a","1")]`
/// and `[("a","1"),("b","2")]` address the same sample.
type LabelSet = Vec<(String, String)>;

fn canonical(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet =
        labels.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect();
    set.sort();
    set
}

/// One metric family: shared metadata plus its labeled samples, ordered.
#[derive(Debug, Clone)]
struct Family {
    help: String,
    domain: Domain,
    kind: MetricKind,
    /// Histogram upper bounds (empty for counters and gauges).
    buckets: Vec<f64>,
    samples: BTreeMap<LabelSet, SampleValue>,
}

/// The metrics registry: a deterministic, ordered map of metric families.
///
/// All iteration — and therefore every rendered snapshot — is ordered by
/// `(family name, label set)`, never by hash order. Counters accumulate
/// as `f64` so virtual-millisecond totals fit naturally; determinism of
/// the sums is the *caller's* obligation: fold contributions in a fixed
/// order (the serving layer uses session-id order), and the resulting
/// floats are bit-identical across runs.
///
/// Metrics must be registered before use; updating an unregistered name
/// panics (a programmer error worth failing loudly on), and registration
/// is idempotent so emitters may re-register on every touch.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    families: BTreeMap<String, Family>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &mut self,
        name: &str,
        help: &str,
        domain: Domain,
        kind: MetricKind,
        buckets: &[f64],
    ) {
        match self.families.get(name) {
            Some(existing) => {
                assert_eq!(
                    existing.kind,
                    kind,
                    "metric `{name}` re-registered as {} but exists as {}",
                    kind.as_str(),
                    existing.kind.as_str()
                );
                assert_eq!(
                    existing.domain, domain,
                    "metric `{name}` re-registered in a different clock domain"
                );
            }
            None => {
                assert!(
                    buckets.windows(2).all(|w| w[0] < w[1]),
                    "histogram `{name}` buckets must be strictly increasing"
                );
                self.families.insert(
                    name.to_owned(),
                    Family {
                        help: help.to_owned(),
                        domain,
                        kind,
                        buckets: buckets.to_vec(),
                        samples: BTreeMap::new(),
                    },
                );
            }
        }
    }

    /// Declares a counter family (idempotent).
    pub fn register_counter(&mut self, name: &str, domain: Domain, help: &str) {
        self.register(name, help, domain, MetricKind::Counter, &[]);
    }

    /// Declares a gauge family (idempotent).
    pub fn register_gauge(&mut self, name: &str, domain: Domain, help: &str) {
        self.register(name, help, domain, MetricKind::Gauge, &[]);
    }

    /// Declares a histogram family with fixed, strictly increasing upper
    /// bounds (idempotent).
    pub fn register_histogram(&mut self, name: &str, domain: Domain, help: &str, buckets: &[f64]) {
        self.register(name, help, domain, MetricKind::Histogram, buckets);
    }

    fn family_mut(&mut self, name: &str, kind: MetricKind) -> &mut Family {
        let family = self
            .families
            .get_mut(name)
            .unwrap_or_else(|| panic!("metric `{name}` used before registration"));
        assert_eq!(
            family.kind,
            kind,
            "metric `{name}` is a {}, not a {}",
            family.kind.as_str(),
            kind.as_str()
        );
        family
    }

    /// Adds `by` to a counter sample.
    pub fn inc(&mut self, name: &str, labels: &[(&str, &str)], by: u64) {
        self.inc_f64(name, labels, by as f64);
    }

    /// Adds a fractional amount to a counter sample (virtual-millisecond
    /// totals). Negative increments panic: counters are monotone.
    pub fn inc_f64(&mut self, name: &str, labels: &[(&str, &str)], by: f64) {
        assert!(by >= 0.0, "counter `{name}` incremented by negative {by}");
        let family = self.family_mut(name, MetricKind::Counter);
        match family.samples.entry(canonical(labels)).or_insert(SampleValue::Counter(0.0)) {
            SampleValue::Counter(v) => *v += by,
            _ => unreachable!("kind checked"),
        }
    }

    /// Sets a gauge sample.
    pub fn set_gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let family = self.family_mut(name, MetricKind::Gauge);
        family.samples.insert(canonical(labels), SampleValue::Gauge(value));
    }

    /// Raises a gauge sample to `value` if it is below it (high-water
    /// marks: peak queue depth, peak in-flight).
    pub fn set_gauge_max(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let family = self.family_mut(name, MetricKind::Gauge);
        match family.samples.entry(canonical(labels)).or_insert(SampleValue::Gauge(value)) {
            SampleValue::Gauge(v) => *v = v.max(value),
            _ => unreachable!("kind checked"),
        }
    }

    /// Records one observation into a histogram sample.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.observe_n(name, labels, value, 1);
    }

    /// Records `weight` identical observations at once (the scheduler's
    /// latency samples are per-slice and weighted by steps).
    pub fn observe_n(&mut self, name: &str, labels: &[(&str, &str)], value: f64, weight: u64) {
        if weight == 0 {
            return;
        }
        let family = self
            .families
            .get_mut(name)
            .unwrap_or_else(|| panic!("metric `{name}` used before registration"));
        assert_eq!(family.kind, MetricKind::Histogram, "metric `{name}` is not a histogram");
        let bounds = family.buckets.clone();
        let slot = family.samples.entry(canonical(labels)).or_insert_with(|| {
            SampleValue::Histogram(HistogramValue {
                bucket_counts: vec![0; bounds.len()],
                sum: 0.0,
                count: 0,
            })
        });
        match slot {
            SampleValue::Histogram(h) => {
                for (i, bound) in bounds.iter().enumerate() {
                    if value <= *bound {
                        h.bucket_counts[i] += weight;
                    }
                }
                h.sum += value * weight as f64;
                h.count += weight;
            }
            _ => unreachable!("kind checked"),
        }
    }

    /// Reads a counter sample (0 when never incremented) — test and
    /// report helper.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        match self.families.get(name).and_then(|f| f.samples.get(&canonical(labels))) {
            Some(SampleValue::Counter(v)) => *v,
            _ => 0.0,
        }
    }

    /// Reads a gauge sample, if set.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.families.get(name).and_then(|f| f.samples.get(&canonical(labels))) {
            Some(SampleValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Reads a histogram sample, if any observation landed in it.
    pub fn histogram_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<HistogramValue> {
        match self.families.get(name).and_then(|f| f.samples.get(&canonical(labels))) {
            Some(SampleValue::Histogram(h)) => Some(h.clone()),
            _ => None,
        }
    }

    /// Sums a counter family across all label sets.
    pub fn counter_total(&self, name: &str) -> f64 {
        match self.families.get(name) {
            Some(f) => f
                .samples
                .values()
                .map(|v| match v {
                    SampleValue::Counter(c) => *c,
                    _ => 0.0,
                })
                .sum(),
            None => 0.0,
        }
    }

    /// Snapshots every family, optionally restricted to one domain.
    fn snapshot_filtered(&self, domain: Option<Domain>) -> MetricsSnapshot {
        let families = self
            .families
            .iter()
            .filter(|(_, f)| domain.is_none_or(|d| f.domain == d))
            .map(|(name, f)| FamilySnapshot {
                name: name.clone(),
                help: f.help.clone(),
                kind: f.kind.as_str().to_owned(),
                domain: f.domain.as_str().to_owned(),
                buckets: f.buckets.clone(),
                samples: f
                    .samples
                    .iter()
                    .map(|(labels, value)| {
                        let labels = labels
                            .iter()
                            .map(|(k, v)| Label { key: k.clone(), value: v.clone() })
                            .collect();
                        match value {
                            SampleValue::Counter(v) | SampleValue::Gauge(v) => SampleSnapshot {
                                labels,
                                value: *v,
                                bucket_counts: Vec::new(),
                                sum: 0.0,
                                count: 0,
                            },
                            SampleValue::Histogram(h) => SampleSnapshot {
                                labels,
                                value: 0.0,
                                bucket_counts: h.bucket_counts.clone(),
                                sum: h.sum,
                                count: h.count,
                            },
                        }
                    })
                    .collect(),
            })
            .collect();
        MetricsSnapshot { families }
    }

    /// Snapshots both domains (operational dashboards, `--metrics` files).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.snapshot_filtered(None)
    }

    /// Snapshots only the virtual-time domain — the deterministic
    /// artifact, byte-identical across thread counts and schedules.
    pub fn snapshot_virtual(&self) -> MetricsSnapshot {
        self.snapshot_filtered(Some(Domain::Virtual))
    }

    /// Snapshots only the wall-clock domain.
    pub fn snapshot_wall(&self) -> MetricsSnapshot {
        self.snapshot_filtered(Some(Domain::Wall))
    }
}

/// A cloneable, possibly-inert handle to a shared registry, mirroring the
/// `SinkHandle` design in `mak-obs`: the default handle is inert and
/// every [`with`](TelemetryHandle::with) is a skipped branch, so emitters
/// can carry one unconditionally at zero cost.
#[derive(Clone, Default)]
pub struct TelemetryHandle {
    inner: Option<Arc<Mutex<MetricsRegistry>>>,
}

impl TelemetryHandle {
    /// The inert handle: every update is a no-op.
    pub fn none() -> Self {
        TelemetryHandle { inner: None }
    }

    /// Wraps a fresh registry, returning the handle and the shared cell
    /// for post-run inspection.
    pub fn shared() -> (Self, Arc<Mutex<MetricsRegistry>>) {
        let cell = Arc::new(Mutex::new(MetricsRegistry::new()));
        (TelemetryHandle { inner: Some(cell.clone()) }, cell)
    }

    /// Whether a registry is attached.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Runs `f` against the registry when one is attached; a single
    /// branch otherwise. Tolerates a poisoned lock — telemetry from a
    /// panicked neighbor must not cascade.
    pub fn with<F: FnOnce(&mut MetricsRegistry)>(&self, f: F) {
        if let Some(cell) = &self.inner {
            let mut guard = match cell.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            f(&mut guard);
        }
    }
}

impl fmt::Debug for TelemetryHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_active() {
            "TelemetryHandle(active)"
        } else {
            "TelemetryHandle(inert)"
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let mut reg = MetricsRegistry::new();
        reg.register_counter("steps_total", Domain::Virtual, "steps");
        reg.inc("steps_total", &[("app", "a"), ("crawler", "mak")], 3);
        reg.inc("steps_total", &[("crawler", "mak"), ("app", "a")], 2); // label order is canonical
        reg.inc("steps_total", &[("app", "b"), ("crawler", "mak")], 7);
        assert_eq!(reg.counter_value("steps_total", &[("app", "a"), ("crawler", "mak")]), 5.0);
        assert_eq!(reg.counter_total("steps_total"), 12.0);
        assert_eq!(reg.counter_value("steps_total", &[("app", "zzz")]), 0.0);
    }

    #[test]
    fn gauges_set_and_high_water() {
        let mut reg = MetricsRegistry::new();
        reg.register_gauge("depth", Domain::Wall, "queue depth");
        reg.set_gauge("depth", &[], 4.0);
        reg.set_gauge_max("depth", &[], 2.0);
        assert_eq!(reg.gauge_value("depth", &[]), Some(4.0));
        reg.set_gauge_max("depth", &[], 9.0);
        assert_eq!(reg.gauge_value("depth", &[]), Some(9.0));
    }

    #[test]
    fn histograms_bucket_cumulatively_and_weight() {
        let mut reg = MetricsRegistry::new();
        reg.register_histogram("lat", Domain::Wall, "latency", &[10.0, 100.0, 1000.0]);
        reg.observe("lat", &[], 5.0);
        reg.observe_n("lat", &[], 50.0, 3);
        reg.observe("lat", &[], 5000.0); // above every bound: only +Inf
        let h = reg.histogram_value("lat", &[]).unwrap();
        assert_eq!(h.bucket_counts, vec![1, 4, 4]);
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 5.0 + 150.0 + 5000.0);
        reg.observe_n("lat", &[], 1.0, 0); // weight 0 is a no-op
        assert_eq!(reg.histogram_value("lat", &[]).unwrap().count, 5);
    }

    #[test]
    fn registration_is_idempotent_but_kind_checked() {
        let mut reg = MetricsRegistry::new();
        reg.register_counter("c", Domain::Virtual, "first help wins");
        reg.register_counter("c", Domain::Virtual, "ignored");
        reg.inc("c", &[], 1);
        assert_eq!(reg.counter_value("c", &[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "used before registration")]
    fn updating_unregistered_metric_panics() {
        MetricsRegistry::new().inc("nope", &[], 1);
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_conflict_panics() {
        let mut reg = MetricsRegistry::new();
        reg.register_counter("c", Domain::Virtual, "");
        reg.register_gauge("c", Domain::Virtual, "");
    }

    #[test]
    fn domain_filter_splits_snapshots() {
        let mut reg = MetricsRegistry::new();
        reg.register_counter("v", Domain::Virtual, "");
        reg.register_counter("w", Domain::Wall, "");
        reg.inc("v", &[], 1);
        reg.inc("w", &[], 1);
        let virt = reg.snapshot_virtual();
        assert_eq!(virt.families.len(), 1);
        assert_eq!(virt.families[0].name, "v");
        let wall = reg.snapshot_wall();
        assert_eq!(wall.families.len(), 1);
        assert_eq!(wall.families[0].name, "w");
        assert_eq!(reg.snapshot().families.len(), 2);
    }

    #[test]
    fn inert_handle_skips_and_shared_handle_collects() {
        let inert = TelemetryHandle::none();
        assert!(!inert.is_active());
        inert.with(|_| panic!("must not run"));

        let (handle, cell) = TelemetryHandle::shared();
        let clone = handle.clone();
        std::thread::spawn(move || {
            clone.with(|r| {
                r.register_counter("hits", Domain::Virtual, "");
                r.inc("hits", &[], 2);
            });
        })
        .join()
        .unwrap();
        handle.with(|r| r.inc("hits", &[], 1));
        assert_eq!(cell.lock().unwrap().counter_value("hits", &[]), 3.0);
    }
}
