//! Edge-case tests for URL canonicalization and server-side sessions:
//! normalization idempotence, alias-class stability under query-parameter
//! permutation, and session-allocation determinism across fresh hosts.

use mak_websim::apps;
use mak_websim::http::{Request, SessionId};
use mak_websim::server::AppHost;
use mak_websim::url::Url;
use proptest::prelude::*;

fn with_params(mut url: Url, params: &[(String, String)]) -> Url {
    for (k, v) in params {
        url = url.with_query(k.clone(), v.clone());
    }
    url
}

proptest! {
    /// `normalized()` is idempotent: the canonical form re-parses and
    /// re-normalizes to itself. Without this, one resource could occupy
    /// several alias classes and inflate distinct-URL counts.
    #[test]
    fn normalization_is_idempotent(
        host in "[a-z]{1,8}(\\.[a-z]{2,5})?",
        segments in proptest::collection::vec("[a-z0-9._-]{1,8}", 0..4),
        params in proptest::collection::vec(("[a-z]{1,5}", "[a-z0-9]{0,6}"), 0..5),
    ) {
        let url = with_params(Url::new(host, format!("/{}", segments.join("/"))), &params);
        let norm = url.normalized();
        let reparsed: Url = norm.parse().expect("canonical form parses");
        prop_assert_eq!(reparsed.normalized(), norm);
    }

    /// The alias class is stable under any rotation or adjacent swap of
    /// the query parameters — parameter order must never split a class.
    /// Duplicate keys are kept, so multisets are compared, not sets.
    #[test]
    fn alias_class_stable_under_query_permutation(
        params in proptest::collection::vec(("[a-z]{1,5}", "[a-z0-9]{0,4}"), 1..6),
        rotation in 0usize..8,
        swap in 0usize..8,
    ) {
        let base = Url::new("app.local", "/index.php");
        let canonical = with_params(base.clone(), &params).normalized().to_owned();

        let mut rotated = params.clone();
        let r = rotation % rotated.len();
        rotated.rotate_left(r);
        prop_assert_eq!(with_params(base.clone(), &rotated).normalized(), canonical.clone());

        let mut swapped = params.clone();
        if swapped.len() >= 2 {
            let i = swap % (swapped.len() - 1);
            swapped.swap(i, i + 1);
        }
        prop_assert_eq!(with_params(base, &swapped).normalized(), canonical);
    }

    /// Repeating a query parameter is visible in the alias class (the
    /// duplicate is retained), and doubling is itself order-insensitive.
    #[test]
    fn duplicate_parameters_are_retained(
        key in "[a-z]{1,5}",
        value in "[a-z0-9]{1,4}",
        other in "[a-z0-9]{1,4}",
    ) {
        let base = Url::new("app.local", "/p");
        let single = base.clone().with_query(key.clone(), value.clone());
        let doubled = single.clone().with_query(key.clone(), other.clone());
        prop_assert_ne!(single.normalized(), doubled.normalized());
        let reversed =
            base.with_query(key.clone(), other).with_query(key, value);
        prop_assert_eq!(doubled.normalized(), reversed.normalized());
    }
}

/// Replaying one request trace against two fresh hosts yields identical
/// session cookies, session counts, rendered text, and covered lines:
/// session allocation and reset are pure functions of the request order.
#[test]
fn session_allocation_is_deterministic() {
    fn replay(app: &str) -> (Vec<SessionId>, usize, u64, Vec<String>) {
        let mut host = AppHost::new(apps::build(app).unwrap());
        let origin = host.app().seed_url();
        let paths = ["/", "/login", "/search", "/"];
        let mut cookies: Vec<SessionId> = Vec::new();
        let mut texts = Vec::new();
        for i in 0..12usize {
            let url = origin.join(paths[i % paths.len()]).unwrap();
            let mut req = Request::get(url);
            // Every third request simulates a session reset: a fresh
            // client with no cookie. Others continue the latest session.
            if i % 3 != 0 {
                req.session = cookies.last().copied();
            }
            let resp = host.fetch(&req);
            cookies.push(resp.session.expect("session always established"));
            if let Some(doc) = resp.document() {
                texts.push(doc.text_content());
            }
        }
        (cookies, host.session_count(), host.harness_lines_covered(), texts)
    }

    for app in ["phpbb2", "oscommerce2", "wordpress"] {
        assert_eq!(replay(app), replay(app), "{app}: session replay must be deterministic");
    }
}

/// A forced logout mid-crawl (the fault layer's session-expiry fault drops
/// the cookie, here simulated as a cookie-less request mid-sequence) is
/// survivable at the websim level: a fresh session is minted, the crawl
/// sequence continues, and harness coverage stays monotone non-decreasing
/// across the expiry — losing a session never loses coverage.
#[test]
fn forced_logout_mid_sequence_keeps_coverage_monotone() {
    for app in ["phpbb2", "hotcrp"] {
        let mut host = AppHost::new(apps::build(app).unwrap());
        let origin = host.app().seed_url();
        let paths = ["/", "/search", "/", "/search", "/", "/search", "/", "/"];
        let mut cookie: Option<SessionId> = None;
        let mut covered = 0u64;
        let mut cookies_seen = std::collections::BTreeSet::new();
        for (i, path) in paths.iter().enumerate() {
            let mut req = Request::get(origin.join(path).unwrap());
            // The forced logout: half-way through, the cookie vanishes.
            if i == paths.len() / 2 {
                cookie = None;
            }
            req.session = cookie;
            let resp = host.fetch(&req);
            cookie = Some(resp.session.expect("a session is always established"));
            cookies_seen.insert(cookie.unwrap());
            let now = host.harness_lines_covered();
            assert!(now >= covered, "{app}: coverage regressed across the logout");
            covered = now;
        }
        assert!(cookies_seen.len() >= 2, "{app}: the logout minted a fresh session");
        assert_eq!(host.session_count(), cookies_seen.len(), "{app}: sessions accounted for");
    }
}

/// HotCRP's login-gated PC area after a forced logout: the fresh session is
/// locked out again, re-login through the same form re-opens the area, and
/// coverage keeps growing through the second visit.
#[test]
fn hotcrp_relogin_reopens_the_gated_area() {
    use mak_websim::http::Status;

    let mut host = AppHost::new(apps::build("hotcrp").unwrap());
    let login = |host: &mut AppHost, sid: SessionId| {
        let mut req = Request::post(
            "http://hotcrp.local/pc/p0".parse().unwrap(),
            vec![("user".into(), "demo".into()), ("password".into(), "password123".into())],
        );
        req.session = Some(sid);
        host.fetch(&req)
    };
    let gated = |host: &mut AppHost, sid: SessionId| {
        let mut req = Request::get("http://hotcrp.local/pc/p2".parse().unwrap());
        req.session = Some(sid);
        host.fetch(&req)
    };

    // First session: bounce, login, enter.
    let a = host.fetch(&Request::get("http://hotcrp.local/".parse().unwrap())).session.unwrap();
    assert_eq!(gated(&mut host, a).status, Status::Found, "locked out before login");
    login(&mut host, a);
    assert_eq!(gated(&mut host, a).status, Status::Ok, "gated area opens after login");
    let covered_after_first = host.harness_lines_covered();

    // Forced logout: a cookie-less request mints session B, which is gated
    // again — authentication is per-session state, not global.
    let b = host.fetch(&Request::get("http://hotcrp.local/".parse().unwrap())).session.unwrap();
    assert_ne!(a, b);
    assert_eq!(gated(&mut host, b).status, Status::Found, "fresh session is locked out");

    // Re-login re-opens the area and coverage stays monotone.
    login(&mut host, b);
    assert_eq!(gated(&mut host, b).status, Status::Ok, "re-login re-opens the area");
    assert!(
        host.harness_lines_covered() >= covered_after_first,
        "coverage is monotone across logout and re-login"
    );
}

/// A reset (cookie-less request) always mints a fresh session rather than
/// resurrecting an old one, and never disturbs existing sessions.
#[test]
fn reset_mints_fresh_sessions() {
    let mut host = AppHost::new(apps::build("oscommerce2").unwrap());
    let origin = host.app().seed_url();
    let mut seen = std::collections::BTreeSet::new();
    for round in 1..=5usize {
        let resp = host.fetch(&Request::get(origin.clone()));
        let cookie = resp.session.unwrap();
        assert!(seen.insert(cookie), "round {round}: cookie {cookie} reused");
        assert_eq!(host.session_count(), round);
    }
}
