//! Fuzz-style robustness tests: the simulator must never panic on
//! adversarial inputs — malformed URLs, arbitrary requests against every
//! application model, hostile form data.

use mak_websim::apps;
use mak_websim::http::{Method, Request};
use mak_websim::server::AppHost;
use mak_websim::url::Url;
use proptest::prelude::*;

proptest! {
    /// Parsing never panics, whatever the input; it either yields a URL
    /// that re-parses identically or a structured error.
    #[test]
    fn url_parsing_is_total(input in ".{0,120}") {
        match input.parse::<Url>() {
            Ok(url) => {
                let reparsed: Url = url.to_string().parse().expect("display is canonical");
                prop_assert_eq!(url, reparsed);
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }

    /// join() never panics against arbitrary hrefs.
    #[test]
    fn url_join_is_total(href in ".{0,80}") {
        let base: Url = "http://h/dir/page".parse().unwrap();
        let _ = base.join(&href);
    }

    /// Every app answers arbitrary same-origin requests without panicking,
    /// and always returns a well-formed response.
    #[test]
    fn apps_survive_arbitrary_requests(
        app_idx in 0usize..11,
        path in "[/a-z0-9?=&.]{0,60}",
        post in proptest::bool::ANY,
        form in proptest::collection::vec(("[a-z]{1,8}", ".{0,20}"), 0..4),
    ) {
        let names = apps::all_names();
        let name = names[app_idx];
        let mut host = AppHost::new(apps::build(name).unwrap());
        let host_name = host.app().seed_url().host().to_owned();
        let raw = format!("http://{host_name}/{}", path.trim_start_matches('/'));
        if let Ok(url) = raw.parse::<Url>() {
            let mut req = if post {
                Request::post(url, form.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
            } else {
                Request::get(url)
            };
            req.method = if post { Method::Post } else { Method::Get };
            let resp = host.fetch(&req);
            prop_assert!(resp.session.is_some(), "{name}: session always established");
            // Any HTML body must be renderable to text and tags.
            if let Some(doc) = resp.document() {
                let _ = doc.tag_sequence();
                let _ = doc.text_content();
                let _ = doc.to_html();
                let _ = doc.interactables();
            }
        }
    }
}

/// Deeply malformed but syntactically valid requests against the trickiest
/// handlers (widgets with session state).
#[test]
fn widget_endpoints_handle_hostile_input() {
    let hostile_values =
        ["", " ", "0", "-1", "999999999999999999999", "<script>", "a&b=c", "\u{0}"];
    for (app, path) in [
        ("drupal", "/shortcuts"),
        ("oscommerce2", "/cart?act=buy"),
        ("oscommerce2", "/cart?act=nonsense"),
        ("phpbb2", "/post?id=-1"),
        ("phpbb2", "/post?id=99999"),
        ("wordpress", "/search"),
        ("hotcrp", "/scoreform"),
    ] {
        let mut host = AppHost::new(apps::build(app).unwrap());
        for value in hostile_values {
            let url: Url =
                format!("http://{}{}", host.app().seed_url().host(), path).parse().unwrap();
            let req = Request::post(
                url,
                vec![
                    ("title".into(), value.into()),
                    ("data".into(), value.into()),
                    ("q".into(), value.into()),
                    ("id".into(), value.into()),
                ],
            );
            let resp = host.fetch(&req);
            assert!(resp.session.is_some(), "{app}{path} with {value:?}");
        }
    }
}

/// The session store survives interleaved cookies from many "clients".
#[test]
fn many_sessions_interleave_safely() {
    let mut host = AppHost::new(apps::build("oscommerce2").unwrap());
    let mut cookies = Vec::new();
    for _ in 0..10 {
        let resp = host.fetch(&Request::get("http://oscommerce.local/".parse().unwrap()));
        cookies.push(resp.session.unwrap());
    }
    // Interleave cart mutations per session; counters must stay isolated.
    for (i, &cookie) in cookies.iter().enumerate() {
        for _ in 0..=i {
            let mut req =
                Request::post("http://oscommerce.local/cart?act=add".parse().unwrap(), vec![]);
            req.session = Some(cookie);
            host.fetch(&req);
        }
    }
    for (i, &cookie) in cookies.iter().enumerate() {
        let mut req = Request::get("http://oscommerce.local/cart".parse().unwrap());
        req.session = Some(cookie);
        let resp = host.fetch(&req);
        let text = resp.document().unwrap().text_content();
        assert!(
            text.contains(&format!("items: {}", i + 1)),
            "session {i}: expected items: {} in {text}",
            i + 1
        );
    }
}
