//! # mak-websim — a deterministic web-application simulator
//!
//! This crate is the testbed substrate of the MAK reproduction. The paper
//! ("Less is More: Boosting Coverage of Web Crawling through Adversarial
//! Multi-Armed Bandit", DSN 2025) evaluates crawlers on eleven deployed web
//! applications instrumented with Xdebug / coverage-node. Here, each
//! application is a deterministic in-process program exposing exactly the
//! black-box interface the crawlers assume: a seed URL, HTML documents,
//! interactable elements, sessions, and server-side line coverage.
//!
//! ## Layout
//!
//! - [`url`], [`http`], [`dom`] — the wire- and page-level observables;
//! - [`session`] — server-side state, enabling the paper's shopping-cart
//!   coverage dynamics (§IV-C);
//! - [`coverage`] — Xdebug-style (live) and coverage-node-style (final)
//!   line-coverage instrumentation (§V-A.3);
//! - [`server`] — the [`WebApp`](server::WebApp) trait and
//!   [`AppHost`](server::AppHost) deployment wrapper;
//! - [`apps`] — the blueprint generator plus the eleven application models
//!   of the paper's testbed (§V-A.3).
//!
//! ## Quick start
//!
//! ```
//! use mak_websim::apps;
//! use mak_websim::http::Request;
//! use mak_websim::server::AppHost;
//!
//! let mut host = AppHost::new(apps::build("addressbook").expect("known app"));
//! let seed = host.app().seed_url();
//! let resp = host.fetch(&Request::get(seed));
//! let doc = resp.document().expect("seed page renders");
//! assert!(!doc.interactables().is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod apps;
pub mod audit;
pub mod coverage;
pub mod dom;
pub mod headers;
pub mod http;
pub mod server;
pub mod session;
pub mod url;
pub mod util;
