//! Application hosting: the boundary between crawlers and simulated apps.
//!
//! A [`WebApp`] is a deterministic server-side program: given a request and
//! its session, it records executed code [blocks](crate::coverage::Block)
//! and produces a response. An [`AppHost`] wires an app to a
//! [`CoverageTracker`] and a [`SessionStore`], playing the role of the
//! deployed application + instrumentation stack of the paper's testbed.

use crate::coverage::{Block, CodeModel, CoverageMode, CoverageTracker};
use crate::http::{Request, Response};
use crate::session::{Session, SessionStore};
use crate::url::Url;
use mak_obs::event::Event;
use mak_obs::sink::SinkHandle;
use serde::{Deserialize as _, Serialize as _};

/// Per-request context handed to [`WebApp::handle`]: the requester's session
/// and the coverage recorder.
#[derive(Debug)]
pub struct RequestCtx<'a> {
    session: &'a mut Session,
    coverage: &'a mut CoverageTracker,
    request_index: u64,
}

impl<'a> RequestCtx<'a> {
    /// The requester's server-side session.
    pub fn session(&mut self) -> &mut Session {
        self.session
    }

    /// The 1-based index of this request since deployment — lets apps model
    /// deterministic transient failures (every n-th request erroring).
    pub fn request_index(&self) -> u64 {
        self.request_index
    }

    /// Records execution of a code block.
    pub fn execute(&mut self, block: Block) {
        self.coverage.hit(block);
    }

    /// Records execution of several blocks.
    pub fn execute_all(&mut self, blocks: &[Block]) {
        for b in blocks {
            self.coverage.hit(*b);
        }
    }
}

/// A deterministic simulated web application.
///
/// Implementations must be pure functions of `(request, session)`: the
/// simulator relies on this for reproducible experiments. Apps are
/// `Send + Sync` — [`handle`](WebApp::handle) takes `&self`, with all
/// per-run mutability confined to the [`RequestCtx`] — so one immutable
/// model can be shared (`Arc<dyn WebApp>`) by thousands of concurrent
/// crawl sessions, each with its own [`AppHost`].
pub trait WebApp: Send + Sync {
    /// Short identifier, e.g. `"drupal"`.
    fn name(&self) -> &str;

    /// The URL crawling starts from (§II-B: the seed URL).
    fn seed_url(&self) -> Url;

    /// The app's declared server-side code.
    fn code_model(&self) -> &CodeModel;

    /// Whether coverage is observable live (Xdebug/PHP) or only at the end
    /// (coverage-node/Node.js).
    fn coverage_mode(&self) -> CoverageMode;

    /// Base page-load latency in virtual milliseconds, used by the
    /// browser's cost model. Larger applications respond more slowly.
    fn base_latency_ms(&self) -> f64 {
        300.0
    }

    /// Handles one request.
    fn handle(&self, req: &Request, ctx: &mut RequestCtx<'_>) -> Response;
}

/// How a host references its application model: exclusively owned (the
/// classic one-run path) or shared with other hosts (the serving path,
/// where thousands of concurrent sessions deploy the same immutable
/// model without cloning it).
enum AppRef {
    Owned(Box<dyn WebApp>),
    Shared(std::sync::Arc<dyn WebApp>),
}

impl std::ops::Deref for AppRef {
    type Target = dyn WebApp;

    fn deref(&self) -> &(dyn WebApp + 'static) {
        match self {
            AppRef::Owned(app) => &**app,
            AppRef::Shared(app) => &**app,
        }
    }
}

/// A hosted application instance: app + coverage + sessions + counters.
///
/// One `AppHost` corresponds to one fresh deployment, i.e. one experimental
/// run. The host is the *measurement* boundary: crawlers only see
/// [`Response`]s, while the harness reads coverage through
/// [`tracker`](AppHost::tracker). The application model itself is
/// immutable and may be [shared](AppHost::with_shared) across many
/// hosts; everything mutable (coverage, sessions, counters) is per-host.
pub struct AppHost {
    app: AppRef,
    tracker: CoverageTracker,
    sessions: SessionStore,
    requests: u64,
    sink: SinkHandle,
}

impl std::fmt::Debug for AppHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppHost")
            .field("app", &self.app.name())
            .field("requests", &self.requests)
            .finish_non_exhaustive()
    }
}

impl AppHost {
    /// Deploys `app` with a fresh coverage tracker and session store.
    pub fn new(app: Box<dyn WebApp>) -> Self {
        Self::from_ref(AppRef::Owned(app))
    }

    /// Deploys a *shared* application model: this host gets its own
    /// coverage tracker, session store, and request counter, but the
    /// model itself stays one allocation shared with every other host
    /// built from the same `Arc`. Behaviour is identical to
    /// [`AppHost::new`] on a fresh copy of the model — apps are pure
    /// functions of `(request, session)`, so sharing is unobservable.
    pub fn with_shared(app: std::sync::Arc<dyn WebApp>) -> Self {
        Self::from_ref(AppRef::Shared(app))
    }

    fn from_ref(app: AppRef) -> Self {
        let tracker = CoverageTracker::new(app.code_model(), app.coverage_mode());
        AppHost {
            app,
            tracker,
            sessions: SessionStore::new(),
            requests: 0,
            sink: SinkHandle::none(),
        }
    }

    /// Attaches an event sink; the host emits [`Event::CoverageDelta`]
    /// whenever a request grows server-side line coverage. Purely
    /// observational — responses and coverage accounting are identical
    /// with or without a sink.
    pub fn set_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }

    /// The hosted application.
    pub fn app(&self) -> &dyn WebApp {
        &*self.app
    }

    /// Serves one request: resolves the session, dispatches to the app, and
    /// stamps the session cookie on the response.
    ///
    /// Requests for foreign hosts are answered with `404` — the simulator
    /// hosts exactly one application, like the paper's per-app testbeds.
    pub fn fetch(&mut self, req: &Request) -> Response {
        self.requests += 1;
        if !req.url.same_origin(&self.app.seed_url()) {
            return Response::not_found();
        }
        let lines_before =
            if self.sink.is_active() { self.tracker.lines_covered_unchecked() } else { 0 };
        let (sid, session) = self.sessions.get_or_create(req.session);
        let mut ctx =
            RequestCtx { session, coverage: &mut self.tracker, request_index: self.requests };
        let mut resp = self.app.handle(req, &mut ctx);
        resp.session = Some(sid);
        if self.sink.is_active() {
            let lines_after = self.tracker.lines_covered_unchecked();
            if lines_after > lines_before {
                self.sink.emit(Event::CoverageDelta {
                    request: self.requests,
                    lines: lines_after,
                    delta: lines_after - lines_before,
                });
            }
        }
        resp
    }

    /// Number of requests served so far.
    pub fn request_count(&self) -> u64 {
        self.requests
    }

    /// Ends the run, sealing final-mode coverage.
    pub fn shutdown(&mut self) {
        self.tracker.seal();
    }

    /// The coverage tracker (measurement side).
    pub fn tracker(&self) -> &CoverageTracker {
        &self.tracker
    }

    /// Live covered-line count for harness-side time series. Not available
    /// to crawlers; respects nothing — see
    /// [`CoverageTracker::observe_lines_covered`] for the tool-faithful view.
    pub fn harness_lines_covered(&self) -> u64 {
        self.tracker.lines_covered_unchecked()
    }

    /// Allocated session id for `cookie`, if the store knows it.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Captures the host's mutable deployment state — coverage, sessions,
    /// request counter — for checkpointing. The application model itself is
    /// immutable and re-supplied on restore; the sink is observational and
    /// never serialized.
    pub fn snapshot_state(&self) -> HostState {
        HostState {
            tracker: self.tracker.clone(),
            sessions: self.sessions.to_value(),
            requests: self.requests,
        }
    }

    /// Redeploys a *shared* application model at a checkpointed state. The
    /// inverse of [`AppHost::snapshot_state`]; behaviour from here on is
    /// identical to the host the state was captured from.
    ///
    /// # Errors
    ///
    /// Returns an error if the serialized session store is malformed.
    pub fn restore_shared(
        app: std::sync::Arc<dyn WebApp>,
        state: &HostState,
    ) -> Result<Self, serde::Error> {
        let sessions = SessionStore::from_value(&state.sessions)?;
        Ok(AppHost {
            app: AppRef::Shared(app),
            tracker: state.tracker.clone(),
            sessions,
            requests: state.requests,
            sink: SinkHandle::none(),
        })
    }

    /// Owned-model variant of [`AppHost::restore_shared`].
    ///
    /// # Errors
    ///
    /// Returns an error if the serialized session store is malformed.
    pub fn restore_owned(app: Box<dyn WebApp>, state: &HostState) -> Result<Self, serde::Error> {
        let sessions = SessionStore::from_value(&state.sessions)?;
        Ok(AppHost {
            app: AppRef::Owned(app),
            tracker: state.tracker.clone(),
            sessions,
            requests: state.requests,
            sink: SinkHandle::none(),
        })
    }
}

/// Checkpointed mutable state of an [`AppHost`]: everything a fresh
/// deployment of the same immutable model needs to continue bit-identically.
#[derive(Debug, Clone)]
pub struct HostState {
    /// The coverage tracker, bitmasks and counters included.
    pub tracker: CoverageTracker,
    /// The session store in its serialized (id-sorted) form.
    pub sessions: serde::Value,
    /// Requests served so far (drives per-request fault/failure modeling).
    pub requests: u64,
}

impl serde::Serialize for HostState {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("tracker".to_owned(), self.tracker.to_value()),
            ("sessions".to_owned(), self.sessions.clone()),
            ("requests".to_owned(), serde::Value::UInt(self.requests)),
        ])
    }
}

impl serde::Deserialize for HostState {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(entries) = value else {
            return Err(serde::Error::custom("expected HostState object"));
        };
        let sessions = entries
            .iter()
            .find(|(k, _)| k == "sessions")
            .map(|(_, v)| v.clone())
            .ok_or_else(|| serde::Error::custom("missing field `sessions`"))?;
        // Validate the embedded store eagerly so corrupt checkpoints fail at
        // load time, not mid-restore.
        SessionStore::from_value(&sessions)?;
        Ok(HostState {
            tracker: serde::__field(entries, "tracker")?,
            sessions,
            requests: serde::__field(entries, "requests")?,
        })
    }
}

/// Convenience: a trivial single-page app used in tests and doctests.
///
/// # Examples
///
/// ```
/// use mak_websim::server::{AppHost, StaticApp};
/// use mak_websim::http::Request;
///
/// let mut host = AppHost::new(Box::new(StaticApp::default()));
/// let resp = host.fetch(&Request::get(host.app().seed_url()));
/// assert!(resp.document().is_some());
/// assert!(host.harness_lines_covered() > 0);
/// ```
#[derive(Debug)]
pub struct StaticApp {
    model: CodeModel,
    block: Block,
}

impl Default for StaticApp {
    fn default() -> Self {
        let mut model = CodeModel::new();
        let file = model.declare_file("index.php", 10);
        StaticApp { model, block: Block { file, start: 1, end: 10 } }
    }
}

impl WebApp for StaticApp {
    fn name(&self) -> &str {
        "static"
    }

    fn seed_url(&self) -> Url {
        Url::new("static.local", "/")
    }

    fn code_model(&self) -> &CodeModel {
        &self.model
    }

    fn coverage_mode(&self) -> CoverageMode {
        CoverageMode::Live
    }

    fn handle(&self, req: &Request, ctx: &mut RequestCtx<'_>) -> Response {
        use crate::dom::{Element, Tag};
        ctx.execute(self.block);
        let body =
            Element::new(Tag::Body).child(Element::new(Tag::A).attr("href", "/").text("home"));
        Response::html(crate::dom::Document::new(req.url.clone(), "static", body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_serves_and_tracks_coverage() {
        let mut host = AppHost::new(Box::new(StaticApp::default()));
        let req = Request::get(host.app().seed_url());
        let resp = host.fetch(&req);
        assert_eq!(resp.status, crate::http::Status::Ok);
        assert!(resp.session.is_some());
        assert_eq!(host.harness_lines_covered(), 10);
        assert_eq!(host.request_count(), 1);
    }

    #[test]
    fn foreign_host_is_not_found() {
        let mut host = AppHost::new(Box::new(StaticApp::default()));
        let resp = host.fetch(&Request::get("http://elsewhere.example/".parse().unwrap()));
        assert_eq!(resp.status, crate::http::Status::NotFound);
    }

    #[test]
    fn sessions_persist_across_requests() {
        let mut host = AppHost::new(Box::new(StaticApp::default()));
        let first = host.fetch(&Request::get(host.app().seed_url()));
        let sid = first.session.unwrap();
        let mut req = Request::get(host.app().seed_url());
        req.session = Some(sid);
        let second = host.fetch(&req);
        assert_eq!(second.session, Some(sid));
        assert_eq!(host.session_count(), 1);
    }

    #[test]
    fn shutdown_seals_coverage() {
        let mut host = AppHost::new(Box::new(StaticApp::default()));
        host.fetch(&Request::get(host.app().seed_url()));
        host.shutdown();
        assert!(host.tracker().is_sealed());
        assert_eq!(host.tracker().observe_lines_covered(), Ok(10));
    }
}
