//! A simplified Document Object Model.
//!
//! The crawlers in the paper only observe the DOM of each page (§II-B). The
//! pieces they actually consume are:
//!
//! - the sequence of HTML tags of the page (WebExplor's state abstraction),
//! - the attribute values of *interactable* elements (QExplore's state
//!   abstraction),
//! - the visible links, buttons and forms (all crawlers' action sets).
//!
//! This module models exactly those observables with a real element tree, so
//! the abstractions can be computed the way the original tools compute them.

use crate::url::Url;
use std::fmt;

/// HTML tag names used by the simulated applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Tag {
    Html,
    Head,
    Title,
    Body,
    Div,
    Span,
    P,
    H1,
    H2,
    Ul,
    Li,
    Table,
    Tr,
    Td,
    A,
    Form,
    Input,
    Select,
    Option,
    Textarea,
    Button,
    Img,
    Nav,
    Footer,
}

impl Tag {
    /// The lowercase HTML name of the tag.
    pub fn name(self) -> &'static str {
        match self {
            Tag::Html => "html",
            Tag::Head => "head",
            Tag::Title => "title",
            Tag::Body => "body",
            Tag::Div => "div",
            Tag::Span => "span",
            Tag::P => "p",
            Tag::H1 => "h1",
            Tag::H2 => "h2",
            Tag::Ul => "ul",
            Tag::Li => "li",
            Tag::Table => "table",
            Tag::Tr => "tr",
            Tag::Td => "td",
            Tag::A => "a",
            Tag::Form => "form",
            Tag::Input => "input",
            Tag::Select => "select",
            Tag::Option => "option",
            Tag::Textarea => "textarea",
            Tag::Button => "button",
            Tag::Img => "img",
            Tag::Nav => "nav",
            Tag::Footer => "footer",
        }
    }
}

impl Tag {
    /// The inverse of [`Tag::name`], for checkpoint deserialization.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "html" => Tag::Html,
            "head" => Tag::Head,
            "title" => Tag::Title,
            "body" => Tag::Body,
            "div" => Tag::Div,
            "span" => Tag::Span,
            "p" => Tag::P,
            "h1" => Tag::H1,
            "h2" => Tag::H2,
            "ul" => Tag::Ul,
            "li" => Tag::Li,
            "table" => Tag::Table,
            "tr" => Tag::Tr,
            "td" => Tag::Td,
            "a" => Tag::A,
            "form" => Tag::Form,
            "input" => Tag::Input,
            "select" => Tag::Select,
            "option" => Tag::Option,
            "textarea" => Tag::Textarea,
            "button" => Tag::Button,
            "img" => Tag::Img,
            "nav" => Tag::Nav,
            "footer" => Tag::Footer,
            _ => return None,
        })
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl serde::Serialize for Tag {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name().to_owned())
    }
}

impl serde::Deserialize for Tag {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            serde::Value::Str(s) => {
                Tag::from_name(s).ok_or_else(|| serde::Error::custom("unknown tag name"))
            }
            _ => Err(serde::Error::custom("expected tag name string")),
        }
    }
}

/// A node of the simplified DOM tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    tag: Tag,
    attrs: Vec<(String, String)>,
    text: String,
    visible: bool,
    children: Vec<Element>,
}

impl Element {
    /// Creates an element with the given tag and no attributes or children.
    pub fn new(tag: Tag) -> Self {
        Element { tag, attrs: Vec::new(), text: String::new(), visible: true, children: Vec::new() }
    }

    /// Sets an attribute, builder-style.
    #[must_use]
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((key.into(), value.into()));
        self
    }

    /// Sets the text content, builder-style.
    #[must_use]
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.text = text.into();
        self
    }

    /// Marks the element as hidden (e.g. `style="display:none"`). Hidden
    /// elements are not interactable per the paper's assumption (i) in §V-A.
    #[must_use]
    pub fn hidden(mut self) -> Self {
        self.visible = false;
        self
    }

    /// Appends a child, builder-style.
    #[must_use]
    pub fn child(mut self, child: Element) -> Self {
        self.children.push(child);
        self
    }

    /// Appends children from an iterator, builder-style.
    #[must_use]
    pub fn children(mut self, children: impl IntoIterator<Item = Element>) -> Self {
        self.children.extend(children);
        self
    }

    /// The element's tag.
    pub fn tag(&self) -> Tag {
        self.tag
    }

    /// The element's attributes, in document order.
    pub fn attrs(&self) -> &[(String, String)] {
        &self.attrs
    }

    /// The value of attribute `key`, if present.
    pub fn attr_value(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// The element's text content.
    pub fn text_content(&self) -> &str {
        &self.text
    }

    /// Whether the element is visible.
    pub fn is_visible(&self) -> bool {
        self.visible
    }

    /// The element's children.
    pub fn child_elements(&self) -> &[Element] {
        &self.children
    }

    fn collect_tags(&self, out: &mut Vec<Tag>) {
        out.push(self.tag);
        for c in &self.children {
            c.collect_tags(out);
        }
    }
}

/// The kind of form field, which determines how a crawler fills it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldKind {
    /// Free-text input; crawlers fill it with a generated string.
    Text,
    /// Hidden input with a server-provided value that must be echoed back.
    Hidden(String),
    /// Selection among fixed options; crawlers pick one.
    Select(Vec<String>),
    /// Password input.
    Password,
}

/// A field of a [`FormSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormField {
    /// The `name` attribute submitted with the form.
    pub name: String,
    /// The kind of input.
    pub kind: FieldKind,
}

/// A parsed, submittable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormSpec {
    /// Absolute action URL the form submits to.
    pub action: Url,
    /// `GET` or `POST`.
    pub method: crate::http::Method,
    /// The fields of the form, in document order.
    pub fields: Vec<FormField>,
    /// The `name`/`id` attribute of the form element, used in element
    /// signatures.
    pub name: String,
}

/// An interactable element extracted from a page: a visible link, button or
/// form (§V-A assumption i).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Interactable {
    /// An anchor with an `href`, resolved to an absolute URL.
    Link {
        /// Absolute target.
        href: Url,
        /// Anchor text.
        text: String,
    },
    /// A standalone button that POSTs to an endpoint.
    Button {
        /// The button's `name` attribute.
        name: String,
        /// Absolute endpoint receiving the click.
        target: Url,
    },
    /// A form with fillable fields.
    Form(FormSpec),
}

impl Interactable {
    /// A stable identity for global deduplication: two occurrences of "the
    /// same" element on different visits map to the same signature. Links use
    /// the normalized target, buttons and forms their name plus target.
    pub fn signature(&self) -> String {
        let mut out = String::new();
        self.write_signature(&mut out);
        out
    }

    /// Appends [`signature`](Self::signature) to `out` — the reusable-buffer
    /// form hot paths use to probe dedup tables without allocating.
    pub fn write_signature(&self, out: &mut String) {
        match self {
            Interactable::Link { href, .. } => {
                out.push_str("link:");
                out.push_str(href.normalized());
            }
            Interactable::Button { name, target } => {
                out.push_str("button:");
                out.push_str(name);
                out.push('@');
                out.push_str(target.normalized());
            }
            Interactable::Form(form) => {
                out.push_str("form:");
                out.push_str(&form.name);
                out.push('@');
                out.push_str(form.action.normalized());
            }
        }
    }

    /// Streaming hash of the signature, bit-identical to
    /// `hash_str(&self.signature())` without materializing the string
    /// (verified by a unit test below — the action keys in recorded
    /// crawl artifacts depend on this equivalence).
    pub fn signature_hash(&self) -> u64 {
        use crate::util::{fnv_fold, mix64, FNV_OFFSET};
        let h = match self {
            Interactable::Link { href, .. } => {
                fnv_fold(fnv_fold(FNV_OFFSET, b"link:"), href.normalized().as_bytes())
            }
            Interactable::Button { name, target } => {
                let h = fnv_fold(FNV_OFFSET, b"button:");
                let h = fnv_fold(h, name.as_bytes());
                fnv_fold(fnv_fold(h, b"@"), target.normalized().as_bytes())
            }
            Interactable::Form(form) => {
                let h = fnv_fold(FNV_OFFSET, b"form:");
                let h = fnv_fold(h, form.name.as_bytes());
                fnv_fold(fnv_fold(h, b"@"), form.action.normalized().as_bytes())
            }
        };
        mix64(h)
    }

    /// The attribute-value string QExplore's state abstraction hashes
    /// (§III-A): the concatenated attribute values of the element.
    pub fn attribute_values(&self) -> String {
        let mut out = String::new();
        self.write_attribute_values(&mut out);
        out
    }

    /// Appends [`attribute_values`](Self::attribute_values) to `out` — the
    /// reusable-buffer form used when building per-page state strings.
    pub fn write_attribute_values(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Interactable::Link { href, text } => {
                let _ = write!(out, "{href} {text}");
            }
            Interactable::Button { name, target } => {
                let _ = write!(out, "{name} {target}");
            }
            Interactable::Form(form) => {
                let _ = write!(out, "{} {}", form.name, form.action);
                for f in &form.fields {
                    out.push(' ');
                    out.push_str(&f.name);
                }
            }
        }
    }

    /// The URL this interactable ultimately addresses.
    pub fn target_url(&self) -> &Url {
        match self {
            Interactable::Link { href, .. } => href,
            Interactable::Button { target, .. } => target,
            Interactable::Form(form) => &form.action,
        }
    }
}

// Checkpoint serialization for interactables. Encodings follow the
// externally-tagged convention the workspace derive uses: unit variants as
// bare strings, data variants as single-entry objects.

impl serde::Serialize for FieldKind {
    fn to_value(&self) -> serde::Value {
        match self {
            FieldKind::Text => serde::Value::Str("Text".to_owned()),
            FieldKind::Password => serde::Value::Str("Password".to_owned()),
            FieldKind::Hidden(v) => {
                serde::Value::Object(vec![("Hidden".to_owned(), serde::Value::Str(v.clone()))])
            }
            FieldKind::Select(opts) => {
                serde::Value::Object(vec![("Select".to_owned(), opts.to_value())])
            }
        }
    }
}

impl serde::Deserialize for FieldKind {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            serde::Value::Str(s) if s == "Text" => Ok(FieldKind::Text),
            serde::Value::Str(s) if s == "Password" => Ok(FieldKind::Password),
            serde::Value::Object(entries) if entries.len() == 1 => {
                let (tag, inner) = &entries[0];
                match tag.as_str() {
                    "Hidden" => Ok(FieldKind::Hidden(String::from_value(inner)?)),
                    "Select" => Ok(FieldKind::Select(Vec::from_value(inner)?)),
                    _ => Err(serde::Error::custom("unknown FieldKind variant")),
                }
            }
            _ => Err(serde::Error::custom("malformed FieldKind")),
        }
    }
}

impl serde::Serialize for FormField {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("name".to_owned(), self.name.to_value()),
            ("kind".to_owned(), self.kind.to_value()),
        ])
    }
}

impl serde::Deserialize for FormField {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            serde::Value::Object(entries) => Ok(FormField {
                name: serde::__field(entries, "name")?,
                kind: serde::__field(entries, "kind")?,
            }),
            _ => Err(serde::Error::custom("expected FormField object")),
        }
    }
}

impl serde::Serialize for FormSpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("action".to_owned(), self.action.to_value()),
            ("method".to_owned(), self.method.to_value()),
            ("fields".to_owned(), self.fields.to_value()),
            ("name".to_owned(), self.name.to_value()),
        ])
    }
}

impl serde::Deserialize for FormSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            serde::Value::Object(entries) => Ok(FormSpec {
                action: serde::__field(entries, "action")?,
                method: serde::__field(entries, "method")?,
                fields: serde::__field(entries, "fields")?,
                name: serde::__field(entries, "name")?,
            }),
            _ => Err(serde::Error::custom("expected FormSpec object")),
        }
    }
}

impl serde::Serialize for Interactable {
    fn to_value(&self) -> serde::Value {
        match self {
            Interactable::Link { href, text } => serde::Value::Object(vec![(
                "Link".to_owned(),
                serde::Value::Object(vec![
                    ("href".to_owned(), href.to_value()),
                    ("text".to_owned(), text.to_value()),
                ]),
            )]),
            Interactable::Button { name, target } => serde::Value::Object(vec![(
                "Button".to_owned(),
                serde::Value::Object(vec![
                    ("name".to_owned(), name.to_value()),
                    ("target".to_owned(), target.to_value()),
                ]),
            )]),
            Interactable::Form(form) => {
                serde::Value::Object(vec![("Form".to_owned(), form.to_value())])
            }
        }
    }
}

impl serde::Deserialize for Interactable {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(entries) = value else {
            return Err(serde::Error::custom("expected Interactable object"));
        };
        if entries.len() != 1 {
            return Err(serde::Error::custom("expected single-variant Interactable"));
        }
        let (tag, inner) = &entries[0];
        match tag.as_str() {
            "Link" => match inner {
                serde::Value::Object(fields) => Ok(Interactable::Link {
                    href: serde::__field(fields, "href")?,
                    text: serde::__field(fields, "text")?,
                }),
                _ => Err(serde::Error::custom("malformed Link")),
            },
            "Button" => match inner {
                serde::Value::Object(fields) => Ok(Interactable::Button {
                    name: serde::__field(fields, "name")?,
                    target: serde::__field(fields, "target")?,
                }),
                _ => Err(serde::Error::custom("malformed Button")),
            },
            "Form" => Ok(Interactable::Form(FormSpec::from_value(inner)?)),
            _ => Err(serde::Error::custom("unknown Interactable variant")),
        }
    }
}

/// Derivations of one DOM tree that every consumer of the page recomputes
/// otherwise: the extracted interactables and the pre-order tag sequence.
/// Shared (via `Arc`) between a cached document and every page served from
/// it, so re-serving a static page costs no tree walk.
#[derive(Debug)]
pub struct DocShared {
    interactables: Vec<Interactable>,
    tags: Vec<Tag>,
}

impl DocShared {
    /// The shared derivations of a body-less page: no elements, no tags.
    pub fn empty() -> Self {
        DocShared { interactables: Vec::new(), tags: Vec::new() }
    }

    /// Rebuilds the derivations from checkpointed parts. Restored pages
    /// carry no DOM tree — only these derivations, which are the sole page
    /// observables the crawlers consume mid-run.
    pub fn from_parts(interactables: Vec<Interactable>, tags: Vec<Tag>) -> Self {
        DocShared { interactables, tags }
    }

    /// The extracted interactable elements, in document order.
    pub fn interactables(&self) -> &[Interactable] {
        &self.interactables
    }

    /// The pre-order tag sequence.
    pub fn tags(&self) -> &[Tag] {
        &self.tags
    }
}

/// A rendered page: its URL, title and DOM tree.
///
/// The tree is held behind an `Arc` so a server can render a static page
/// once and re-serve it under per-request URLs ([`Document::reissue`])
/// without deep-cloning; the optional [`DocShared`] cache travels with it.
/// Equality, like `Debug` before this design, covers the semantic fields
/// (URL, title, tree) only — a cached and a freshly built document compare
/// equal.
#[derive(Debug, Clone)]
pub struct Document {
    url: Url,
    title: String,
    root: std::sync::Arc<Element>,
    shared: Option<std::sync::Arc<DocShared>>,
}

impl PartialEq for Document {
    fn eq(&self, other: &Self) -> bool {
        self.url == other.url && self.title == other.title && self.root == other.root
    }
}

impl Eq for Document {}

impl Document {
    /// Wraps a `<body>` element into a full document for `url`.
    pub fn new(url: Url, title: impl Into<String>, body: Element) -> Self {
        let title = title.into();
        let root = Element::new(Tag::Html)
            .child(Element::new(Tag::Head).child(Element::new(Tag::Title).text(title.clone())))
            .child(body);
        Document { url, title, root: std::sync::Arc::new(root), shared: None }
    }

    /// Precomputes and attaches the [`DocShared`] derivations, so every
    /// [`reissue`](Self::reissue)d copy (and every page built from one)
    /// reuses them instead of re-walking the tree.
    #[must_use]
    pub fn with_shared_cache(mut self) -> Self {
        let shared = DocShared { interactables: self.interactables(), tags: self.tag_sequence() };
        self.shared = Some(std::sync::Arc::new(shared));
        self
    }

    /// The attached or freshly computed [`DocShared`] derivations.
    pub fn shared_cache(&self) -> std::sync::Arc<DocShared> {
        match &self.shared {
            Some(s) => std::sync::Arc::clone(s),
            None => std::sync::Arc::new(DocShared {
                interactables: self.interactables(),
                tags: self.tag_sequence(),
            }),
        }
    }

    /// Re-serves this document under a per-request URL, sharing the tree
    /// and any attached [`DocShared`] cache instead of deep-cloning.
    ///
    /// Only sound when link resolution does not depend on the document URL
    /// beyond its host — i.e. every `href`/`action`/`formaction` in the
    /// tree is absolute or path-absolute, and `url` stays on the same host
    /// and path as the original (query strings may differ, as with alias
    /// links). The blueprint renderer's static pages satisfy this by
    /// construction; the golden-report equivalence tests pin it down.
    #[must_use]
    pub fn reissue(&self, url: Url) -> Document {
        debug_assert_eq!(url.host(), self.url.host(), "reissue must stay on the original host");
        Document {
            url,
            title: self.title.clone(),
            root: std::sync::Arc::clone(&self.root),
            shared: self.shared.clone(),
        }
    }

    /// The URL the document was served from.
    pub fn url(&self) -> &Url {
        &self.url
    }

    /// The page title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The root `<html>` element.
    pub fn root(&self) -> &Element {
        &self.root
    }

    /// Pre-order sequence of all tags in the document — the page
    /// representation WebExplor's state abstraction uses (§III-A).
    pub fn tag_sequence(&self) -> Vec<Tag> {
        if let Some(shared) = &self.shared {
            return shared.tags.clone();
        }
        let mut out = Vec::new();
        self.root.collect_tags(&mut out);
        out
    }

    /// Serializes the document to HTML text — what would travel over the
    /// wire in a real deployment. Attribute values and text are escaped.
    pub fn to_html(&self) -> String {
        let mut out = String::from("<!DOCTYPE html>\n");
        fn walk(el: &Element, out: &mut String) {
            out.push('<');
            out.push_str(el.tag().name());
            for (k, v) in el.attrs() {
                out.push(' ');
                out.push_str(k);
                out.push_str("=\"");
                out.push_str(&escape_html(v));
                out.push('"');
            }
            if !el.is_visible() {
                out.push_str(" style=\"display:none\"");
            }
            out.push('>');
            if !el.text_content().is_empty() {
                out.push_str(&escape_html(el.text_content()));
            }
            for c in el.child_elements() {
                walk(c, out);
            }
            out.push_str("</");
            out.push_str(el.tag().name());
            out.push('>');
        }
        walk(&self.root, &mut out);
        out
    }

    /// All text content of the document, concatenated in pre-order with
    /// single spaces — what a scanner searches for reflected payloads.
    pub fn text_content(&self) -> String {
        fn walk(el: &Element, out: &mut String) {
            if !el.text_content().is_empty() {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(el.text_content());
            }
            for c in el.child_elements() {
                walk(c, out);
            }
        }
        let mut out = String::new();
        walk(&self.root, &mut out);
        out
    }

    /// Extracts the visible interactable elements, resolving link targets
    /// against the document URL. Malformed or unresolvable `href`s are
    /// skipped (a real browser would render them as dead links).
    pub fn interactables(&self) -> Vec<Interactable> {
        let mut out = Vec::new();
        self.walk(&self.root, true, &mut out);
        out
    }

    fn walk(&self, el: &Element, visible: bool, out: &mut Vec<Interactable>) {
        let visible = visible && el.is_visible();
        match el.tag() {
            Tag::A if visible => {
                if let Some(href) = el.attr_value("href") {
                    if let Ok(url) = self.url.join(href) {
                        out.push(Interactable::Link {
                            href: url,
                            text: el.text_content().to_owned(),
                        });
                    }
                }
            }
            Tag::Button if visible => {
                if let Some(target) = el.attr_value("formaction") {
                    if let Ok(url) = self.url.join(target) {
                        out.push(Interactable::Button {
                            name: el.attr_value("name").unwrap_or("button").to_owned(),
                            target: url,
                        });
                    }
                }
            }
            Tag::Form if visible => {
                if let Some(form) = self.parse_form(el) {
                    out.push(Interactable::Form(form));
                }
                // Forms own their inputs; do not descend looking for more
                // interactables inside (nested anchors are not emitted by the
                // simulator's renderer).
                return;
            }
            _ => {}
        }
        for c in el.child_elements() {
            self.walk(c, visible, out);
        }
    }

    fn parse_form(&self, el: &Element) -> Option<FormSpec> {
        let action = el.attr_value("action")?;
        let action = self.url.join(action).ok()?;
        let method = match el.attr_value("method").unwrap_or("get") {
            m if m.eq_ignore_ascii_case("post") => crate::http::Method::Post,
            _ => crate::http::Method::Get,
        };
        let mut fields = Vec::new();
        collect_fields(el, &mut fields);
        Some(FormSpec {
            action,
            method,
            fields,
            name: el.attr_value("name").unwrap_or("form").to_owned(),
        })
    }
}

fn escape_html(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

fn collect_fields(el: &Element, out: &mut Vec<FormField>) {
    for c in el.child_elements() {
        match c.tag() {
            Tag::Input => {
                let name = c.attr_value("name").unwrap_or("input").to_owned();
                let kind = match c.attr_value("type").unwrap_or("text") {
                    "hidden" => FieldKind::Hidden(c.attr_value("value").unwrap_or("").to_owned()),
                    "password" => FieldKind::Password,
                    _ => FieldKind::Text,
                };
                out.push(FormField { name, kind });
            }
            Tag::Textarea => {
                let name = c.attr_value("name").unwrap_or("textarea").to_owned();
                out.push(FormField { name, kind: FieldKind::Text });
            }
            Tag::Select => {
                let name = c.attr_value("name").unwrap_or("select").to_owned();
                let options = c
                    .child_elements()
                    .iter()
                    .filter(|o| o.tag() == Tag::Option)
                    .map(|o| o.attr_value("value").unwrap_or(o.text_content()).to_owned())
                    .collect();
                out.push(FormField { name, kind: FieldKind::Select(options) });
            }
            _ => collect_fields(c, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(body: Element) -> Document {
        Document::new("http://h/page".parse().unwrap(), "t", body)
    }

    #[test]
    fn tag_sequence_is_preorder() {
        let d = doc(Element::new(Tag::Body)
            .child(Element::new(Tag::Div).child(Element::new(Tag::P)))
            .child(Element::new(Tag::Ul).child(Element::new(Tag::Li))));
        assert_eq!(
            d.tag_sequence(),
            vec![Tag::Html, Tag::Head, Tag::Title, Tag::Body, Tag::Div, Tag::P, Tag::Ul, Tag::Li]
        );
    }

    #[test]
    fn extracts_visible_links() {
        let d = doc(Element::new(Tag::Body)
            .child(Element::new(Tag::A).attr("href", "/x").text("x"))
            .child(Element::new(Tag::A).attr("href", "/y").hidden()));
        let items = d.interactables();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].target_url().path(), "/x");
    }

    #[test]
    fn hidden_parent_hides_children() {
        let d = doc(Element::new(Tag::Body)
            .child(Element::new(Tag::Div).hidden().child(Element::new(Tag::A).attr("href", "/x"))));
        assert!(d.interactables().is_empty());
    }

    #[test]
    fn link_without_href_is_skipped() {
        let d = doc(Element::new(Tag::Body).child(Element::new(Tag::A).text("anchor")));
        assert!(d.interactables().is_empty());
    }

    #[test]
    fn parses_form_with_fields() {
        let form = Element::new(Tag::Form)
            .attr("action", "/search")
            .attr("method", "get")
            .attr("name", "search")
            .child(Element::new(Tag::Input).attr("type", "text").attr("name", "q"))
            .child(
                Element::new(Tag::Input)
                    .attr("type", "hidden")
                    .attr("name", "tok")
                    .attr("value", "abc"),
            )
            .child(Element::new(Tag::Select).attr("name", "scope").children([
                Element::new(Tag::Option).attr("value", "all"),
                Element::new(Tag::Option).attr("value", "posts"),
            ]));
        let d = doc(Element::new(Tag::Body).child(form));
        let items = d.interactables();
        assert_eq!(items.len(), 1);
        let Interactable::Form(f) = &items[0] else { panic!("expected form") };
        assert_eq!(f.fields.len(), 3);
        assert_eq!(f.fields[1].kind, FieldKind::Hidden("abc".to_owned()));
        assert!(matches!(&f.fields[2].kind, FieldKind::Select(opts) if opts.len() == 2));
    }

    #[test]
    fn button_requires_formaction() {
        let d = doc(Element::new(Tag::Body)
            .child(Element::new(Tag::Button).attr("name", "buy").attr("formaction", "/buy"))
            .child(Element::new(Tag::Button).attr("name", "inert")));
        let items = d.interactables();
        assert_eq!(items.len(), 1);
        assert!(matches!(&items[0], Interactable::Button { name, .. } if name == "buy"));
    }

    #[test]
    fn signatures_dedup_query_order() {
        let a =
            Interactable::Link { href: "http://h/p?a=1&b=2".parse().unwrap(), text: String::new() };
        let b =
            Interactable::Link { href: "http://h/p?b=2&a=1".parse().unwrap(), text: String::new() };
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn signatures_distinguish_param_values() {
        let a = Interactable::Link { href: "http://h/p?m=1".parse().unwrap(), text: String::new() };
        let b = Interactable::Link { href: "http://h/p?m=2".parse().unwrap(), text: String::new() };
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn to_html_escapes_and_nests() {
        let d = Document::new(
            "http://h/p".parse().unwrap(),
            "T<am>per",
            Element::new(Tag::Body)
                .child(Element::new(Tag::A).attr("href", "/x?a=1&b=2").text("click & go"))
                .child(Element::new(Tag::Div).hidden()),
        );
        let html = d.to_html();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("href=\"/x?a=1&amp;b=2\""));
        assert!(html.contains("click &amp; go"));
        assert!(html.contains("T&lt;am&gt;per"));
        assert!(html.contains("style=\"display:none\""));
        assert!(html.ends_with("</html>"));
    }

    #[test]
    fn text_content_concatenates_preorder() {
        let d = Document::new(
            "http://h/p".parse().unwrap(),
            "title",
            Element::new(Tag::Body)
                .child(Element::new(Tag::H1).text("Results for zz1zz"))
                .child(Element::new(Tag::P).text("hello")),
        );
        let text = d.text_content();
        assert!(text.contains("Results for zz1zz"));
        assert!(text.contains("hello"));
        let title_pos = text.find("title").unwrap();
        let h1_pos = text.find("Results").unwrap();
        assert!(title_pos < h1_pos, "pre-order");
    }

    fn sample_interactables() -> Vec<Interactable> {
        vec![
            Interactable::Link {
                href: "http://h/p?b=2&a=1".parse().unwrap(),
                text: "anchor text".to_owned(),
            },
            Interactable::Button {
                name: "buy".to_owned(),
                target: "http://h/buy".parse().unwrap(),
            },
            Interactable::Form(FormSpec {
                action: "http://h/search?scope=all".parse().unwrap(),
                method: crate::http::Method::Post,
                fields: vec![
                    FormField { name: "q".to_owned(), kind: FieldKind::Text },
                    FormField { name: "tok".to_owned(), kind: FieldKind::Hidden("x".to_owned()) },
                ],
                name: "search".to_owned(),
            }),
        ]
    }

    #[test]
    fn signature_hash_matches_hash_of_signature_string() {
        for el in sample_interactables() {
            assert_eq!(
                el.signature_hash(),
                crate::util::hash_str(&el.signature()),
                "streaming hash diverged for {}",
                el.signature()
            );
        }
    }

    #[test]
    fn buffered_writers_match_allocating_forms() {
        for el in sample_interactables() {
            let mut sig = String::from("prefix-must-survive:");
            el.write_signature(&mut sig);
            assert_eq!(sig, format!("prefix-must-survive:{}", el.signature()));
            let mut attrs = String::new();
            el.write_attribute_values(&mut attrs);
            assert_eq!(attrs, el.attribute_values());
        }
    }

    #[test]
    fn reissued_document_shares_derivations_and_compares_equal() {
        let built = doc(Element::new(Tag::Body)
            .child(Element::new(Tag::A).attr("href", "http://h/x?m=1").text("x")))
        .with_shared_cache();
        let alias: Url = "http://h/page?alias=1".parse().unwrap();
        let reissued = built.reissue(alias.clone());
        assert_eq!(reissued.url(), &alias);
        assert_eq!(reissued.title(), built.title());
        // The shared cache travels, pointer-identical.
        assert!(std::sync::Arc::ptr_eq(&built.shared_cache(), &reissued.shared_cache()));
        // And equals what a fresh extraction would produce.
        assert_eq!(reissued.shared_cache().interactables(), built.interactables().as_slice());
        assert_eq!(reissued.shared_cache().tags(), built.tag_sequence().as_slice());
        // A document reissued under its own URL is indistinguishable.
        assert_eq!(built.reissue(built.url().clone()), built);
    }

    #[test]
    fn relative_links_resolve_against_document_url() {
        let d = Document::new(
            "http://h/dir/page.php".parse().unwrap(),
            "t",
            Element::new(Tag::Body).child(Element::new(Tag::A).attr("href", "other.php")),
        );
        let items = d.interactables();
        assert_eq!(items[0].target_url().path(), "/dir/other.php");
    }
}
