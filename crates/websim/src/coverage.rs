//! Server-side line-coverage instrumentation.
//!
//! The paper measures crawler quality as the number of server-side lines of
//! code executed, collected with Xdebug for PHP applications and
//! coverage-node for Node.js applications (§V-A.3). This module is the
//! simulator's analog: applications declare *source files* with line counts,
//! handlers record executed *blocks* (contiguous line ranges), and a
//! [`CoverageTracker`] accumulates per-line hit sets.
//!
//! Two observation modes mirror the two tools:
//!
//! - [`CoverageMode::Live`] (Xdebug): covered-line counts can be queried at
//!   any time during the run — this is what makes Fig. 2's
//!   coverage-over-time curves possible;
//! - [`CoverageMode::Final`] (coverage-node): counts are only available once
//!   the run is [sealed](CoverageTracker::seal), and the tool additionally
//!   reports the total number of lines (used as ground truth in Table II).

use std::fmt;

/// Identifies a declared source file within a [`CodeModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub(crate) u32);

impl FileId {
    /// The dense declaration index of the file within its [`CodeModel`],
    /// usable as a compact key in measurement-side data structures.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// A contiguous range of lines inside one file, recorded atomically by a
/// handler — the unit of "server-side code executed".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Block {
    /// The file the block belongs to.
    pub file: FileId,
    /// First line of the block (1-based, inclusive).
    pub start: u32,
    /// Last line of the block (inclusive).
    pub end: u32,
}

impl Block {
    /// Number of lines in the block; 0 for an (invalid) empty block rather
    /// than a wrapped-around `u32`.
    pub fn len(&self) -> u32 {
        if self.is_empty() {
            0
        } else {
            self.end - self.start + 1
        }
    }

    /// Whether the block is empty (never true for validated blocks).
    pub fn is_empty(&self) -> bool {
        self.end < self.start
    }
}

/// Error returned when declaring or recording invalid coverage data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoverageError {
    /// The block's file was never declared.
    UnknownFile(FileId),
    /// The block's line range exceeds the file's declared length.
    OutOfRange {
        /// Offending block.
        block: Block,
        /// Declared number of lines of the file.
        file_lines: u32,
    },
    /// Coverage was queried in [`CoverageMode::Final`] before sealing.
    NotSealed,
}

impl fmt::Display for CoverageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverageError::UnknownFile(id) => write!(f, "unknown file id {}", id.0),
            CoverageError::OutOfRange { block, file_lines } => write!(
                f,
                "block {}..={} exceeds file of {} lines",
                block.start, block.end, file_lines
            ),
            CoverageError::NotSealed => {
                write!(f, "final-mode coverage queried before the run was sealed")
            }
        }
    }
}

impl std::error::Error for CoverageError {}

/// Static description of an application's server-side code: its files and
/// their sizes. Shared by all runs of the same application.
#[derive(Debug, Clone, Default)]
pub struct CodeModel {
    files: Vec<FileDecl>,
}

#[derive(Debug, Clone)]
struct FileDecl {
    name: String,
    lines: u32,
}

impl CodeModel {
    /// Creates an empty code model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a source file with `lines` lines and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero — empty source files cannot hold blocks.
    pub fn declare_file(&mut self, name: impl Into<String>, lines: u32) -> FileId {
        assert!(lines > 0, "source files must have at least one line");
        let id = FileId(self.files.len() as u32);
        self.files.push(FileDecl { name: name.into(), lines });
        id
    }

    /// Number of declared files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Looks up a declared file by name.
    pub fn find_file(&self, name: &str) -> Option<FileId> {
        self.files.iter().position(|f| f.name == name).map(|i| FileId(i as u32))
    }

    /// The declared name of `file`.
    pub fn file_name(&self, file: FileId) -> Option<&str> {
        self.files.get(file.0 as usize).map(|f| f.name.as_str())
    }

    /// The declared length of `file` in lines.
    pub fn file_lines(&self, file: FileId) -> Option<u32> {
        self.files.get(file.0 as usize).map(|f| f.lines)
    }

    /// Total declared lines across all files — what coverage-node reports as
    /// the denominator for Node.js applications.
    pub fn total_lines(&self) -> u64 {
        self.files.iter().map(|f| u64::from(f.lines)).sum()
    }

    /// Validates that `block` addresses declared lines.
    ///
    /// # Errors
    ///
    /// Returns [`CoverageError`] if the file is unknown or the range exceeds
    /// the declared file length.
    pub fn validate(&self, block: Block) -> Result<(), CoverageError> {
        let decl =
            self.files.get(block.file.0 as usize).ok_or(CoverageError::UnknownFile(block.file))?;
        if block.is_empty() || block.start == 0 || block.end > decl.lines {
            return Err(CoverageError::OutOfRange { block, file_lines: decl.lines });
        }
        Ok(())
    }
}

/// Whether coverage is observable during the run or only at its end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoverageMode {
    /// Xdebug-style: queryable at any point during execution.
    Live,
    /// coverage-node-style: only available after the application stops.
    Final,
}

/// Accumulates the set of executed lines over one run of one application.
#[derive(Debug, Clone)]
pub struct CoverageTracker {
    mode: CoverageMode,
    /// One bitmask vector per file; bit `i` = line `i+1` hit.
    hits: Vec<Vec<u64>>,
    /// Declared length of each file in lines. Clamping against this — not
    /// against the bitmask capacity, which is rounded up to a multiple of
    /// 64 — keeps undeclared trailing lines out of the covered count.
    file_lines: Vec<u32>,
    covered: u64,
    /// Hits that addressed an unknown file or lines outside the declared
    /// range. Sound app models never trigger this; the reachability audit
    /// asserts it stays zero.
    clamped: u64,
    sealed: bool,
}

impl CoverageTracker {
    /// Creates a tracker for `model` in the given mode.
    pub fn new(model: &CodeModel, mode: CoverageMode) -> Self {
        let hits =
            model.files.iter().map(|f| vec![0u64; (f.lines as usize).div_ceil(64)]).collect();
        let file_lines = model.files.iter().map(|f| f.lines).collect();
        CoverageTracker { mode, hits, file_lines, covered: 0, clamped: 0, sealed: false }
    }

    /// The observation mode.
    pub fn mode(&self) -> CoverageMode {
        self.mode
    }

    /// Records execution of `block`. Re-hitting lines is idempotent.
    ///
    /// Blocks are assumed validated against the [`CodeModel`] (the
    /// [`AppHost`](crate::server::AppHost) does this at registration time);
    /// out-of-range blocks are clamped defensively.
    pub fn hit(&mut self, block: Block) {
        let Some(mask) = self.hits.get_mut(block.file.0 as usize) else {
            self.clamped += 1;
            return;
        };
        let max_line = self.file_lines[block.file.0 as usize];
        if block.is_empty() || block.start == 0 || block.end > max_line {
            self.clamped += 1;
        }
        let start = block.start.max(1);
        let end = block.end.min(max_line);
        if start > end {
            return;
        }
        // Word-at-a-time: set every bit of the (inclusive, 1-based) line
        // range and count only the transitions via popcount. Same result as
        // a per-line loop, ~64x fewer iterations on block-sized ranges.
        let (lo, hi) = ((start - 1) as usize, (end - 1) as usize);
        for (idx, word) in mask.iter_mut().enumerate().take(hi / 64 + 1).skip(lo / 64) {
            let mut bits = !0u64;
            if idx == lo / 64 {
                bits &= !0u64 << (lo % 64);
            }
            if idx == hi / 64 {
                bits &= !0u64 >> (63 - hi % 64);
            }
            let fresh = bits & !*word;
            *word |= fresh;
            self.covered += u64::from(fresh.count_ones());
        }
    }

    /// Marks the run as finished, making final-mode counts observable.
    pub fn seal(&mut self) {
        self.sealed = true;
    }

    /// Whether [`seal`](Self::seal) has been called.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Covered-line count, honoring the observation mode.
    ///
    /// # Errors
    ///
    /// Returns [`CoverageError::NotSealed`] in [`CoverageMode::Final`] before
    /// the run is sealed — exactly the limitation the paper reports for
    /// coverage-node (§V-A.3).
    pub fn observe_lines_covered(&self) -> Result<u64, CoverageError> {
        match self.mode {
            CoverageMode::Live => Ok(self.covered),
            CoverageMode::Final if self.sealed => Ok(self.covered),
            CoverageMode::Final => Err(CoverageError::NotSealed),
        }
    }

    /// Covered-line count regardless of mode — for the *measurement
    /// harness*, not for crawlers (crawlers are black-box and never see
    /// this; the harness uses it to build union ground truths).
    pub fn lines_covered_unchecked(&self) -> u64 {
        self.covered
    }

    /// Number of recorded blocks that had to be clamped (unknown file,
    /// empty range, or lines past the declared file length). A sound app
    /// model keeps this at zero — the reachability audit enforces it.
    pub fn clamped_hits(&self) -> u64 {
        self.clamped
    }

    /// Iterates over `(file, line)` pairs of every covered line, for union
    /// ground-truth estimation (§V-B).
    pub fn covered_lines(&self) -> impl Iterator<Item = (FileId, u32)> + '_ {
        self.hits.iter().enumerate().flat_map(|(fi, mask)| {
            mask.iter().enumerate().flat_map(move |(wi, word)| {
                let word = *word;
                (0..64u32).filter_map(move |b| {
                    if word & (1u64 << b) != 0 {
                        Some((FileId(fi as u32), wi as u32 * 64 + b + 1))
                    } else {
                        None
                    }
                })
            })
        })
    }

    /// Merges another tracker's hits into this one (union).
    ///
    /// # Panics
    ///
    /// Panics if the trackers were built from different code models.
    pub fn merge(&mut self, other: &CoverageTracker) {
        assert_eq!(self.hits.len(), other.hits.len(), "code models differ");
        self.clamped += other.clamped;
        for (mine, theirs) in self.hits.iter_mut().zip(&other.hits) {
            assert_eq!(mine.len(), theirs.len(), "code models differ");
            for (m, t) in mine.iter_mut().zip(theirs) {
                let newly = *t & !*m;
                self.covered += u64::from(newly.count_ones());
                *m |= *t;
            }
        }
    }
}

// Checkpoint serialization: every field is already deterministic (dense
// vectors, no maps), so the derive-style field order is enough.
impl serde::Serialize for CoverageTracker {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (
                "mode".to_owned(),
                serde::Value::Str(
                    match self.mode {
                        CoverageMode::Live => "live",
                        CoverageMode::Final => "final",
                    }
                    .to_owned(),
                ),
            ),
            ("hits".to_owned(), self.hits.to_value()),
            ("file_lines".to_owned(), self.file_lines.to_value()),
            ("covered".to_owned(), serde::Value::UInt(self.covered)),
            ("clamped".to_owned(), serde::Value::UInt(self.clamped)),
            ("sealed".to_owned(), serde::Value::Bool(self.sealed)),
        ])
    }
}

impl serde::Deserialize for CoverageTracker {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(entries) = value else {
            return Err(serde::Error::custom("expected CoverageTracker object"));
        };
        let mode: String = serde::__field(entries, "mode")?;
        let mode = match mode.as_str() {
            "live" => CoverageMode::Live,
            "final" => CoverageMode::Final,
            _ => return Err(serde::Error::custom("unknown coverage mode")),
        };
        let hits: Vec<Vec<u64>> = serde::__field(entries, "hits")?;
        let file_lines: Vec<u32> = serde::__field(entries, "file_lines")?;
        if hits.len() != file_lines.len() {
            return Err(serde::Error::custom("coverage bitmask/file-length shape mismatch"));
        }
        Ok(CoverageTracker {
            mode,
            hits,
            file_lines,
            covered: serde::__field(entries, "covered")?,
            clamped: serde::__field(entries, "clamped")?,
            sealed: serde::__field(entries, "sealed")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> (CodeModel, FileId, FileId) {
        let mut m = CodeModel::new();
        let a = m.declare_file("index.php", 100);
        let b = m.declare_file("lib/db.php", 70);
        (m, a, b)
    }

    #[test]
    fn declares_and_totals() {
        let (m, a, b) = model();
        assert_eq!(m.file_count(), 2);
        assert_eq!(m.total_lines(), 170);
        assert_eq!(m.file_name(a), Some("index.php"));
        assert_eq!(m.file_lines(b), Some(70));
    }

    #[test]
    fn validate_rejects_bad_blocks() {
        let (m, a, _) = model();
        assert!(m.validate(Block { file: a, start: 1, end: 100 }).is_ok());
        assert!(m.validate(Block { file: a, start: 0, end: 5 }).is_err());
        assert!(m.validate(Block { file: a, start: 50, end: 101 }).is_err());
        assert!(m.validate(Block { file: FileId(9), start: 1, end: 1 }).is_err());
        assert!(m.validate(Block { file: a, start: 5, end: 4 }).is_err());
    }

    #[test]
    fn hits_are_idempotent() {
        let (m, a, _) = model();
        let mut t = CoverageTracker::new(&m, CoverageMode::Live);
        t.hit(Block { file: a, start: 10, end: 19 });
        assert_eq!(t.observe_lines_covered().unwrap(), 10);
        t.hit(Block { file: a, start: 10, end: 19 });
        assert_eq!(t.observe_lines_covered().unwrap(), 10);
        t.hit(Block { file: a, start: 15, end: 24 });
        assert_eq!(t.observe_lines_covered().unwrap(), 15);
    }

    #[test]
    fn final_mode_hides_counts_until_sealed() {
        let (m, a, _) = model();
        let mut t = CoverageTracker::new(&m, CoverageMode::Final);
        t.hit(Block { file: a, start: 1, end: 5 });
        assert_eq!(t.observe_lines_covered(), Err(CoverageError::NotSealed));
        t.seal();
        assert_eq!(t.observe_lines_covered(), Ok(5));
    }

    #[test]
    fn covered_lines_enumerates_exactly_hits() {
        let (m, a, b) = model();
        let mut t = CoverageTracker::new(&m, CoverageMode::Live);
        t.hit(Block { file: a, start: 64, end: 66 });
        t.hit(Block { file: b, start: 1, end: 1 });
        let lines: Vec<_> = t.covered_lines().collect();
        assert_eq!(lines, vec![(a, 64), (a, 65), (a, 66), (b, 1)]);
    }

    #[test]
    fn merge_unions_without_double_counting() {
        let (m, a, b) = model();
        let mut t1 = CoverageTracker::new(&m, CoverageMode::Live);
        let mut t2 = CoverageTracker::new(&m, CoverageMode::Live);
        t1.hit(Block { file: a, start: 1, end: 10 });
        t2.hit(Block { file: a, start: 6, end: 15 });
        t2.hit(Block { file: b, start: 1, end: 5 });
        t1.merge(&t2);
        assert_eq!(t1.lines_covered_unchecked(), 20);
    }

    #[test]
    fn out_of_range_hit_is_clamped() {
        let mut m = CodeModel::new();
        let a = m.declare_file("f", 10);
        let mut t = CoverageTracker::new(&m, CoverageMode::Live);
        t.hit(Block { file: a, start: 1, end: 1000 });
        // Clamped to the *declared* file length, not the bitmask capacity
        // (one 64-line word here): exactly the 10 declared lines count.
        assert_eq!(t.lines_covered_unchecked(), 10);
        t.hit(Block { file: a, start: 11, end: 1000 });
        assert_eq!(t.lines_covered_unchecked(), 10, "fully out-of-range block adds nothing");
        t.hit(Block { file: FileId(42), start: 1, end: 5 });
        assert_eq!(t.lines_covered_unchecked(), 10, "unknown file adds nothing");
    }

    #[test]
    fn block_len() {
        let b = Block { file: FileId(0), start: 5, end: 9 };
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        let single = Block { file: FileId(0), start: 7, end: 7 };
        assert_eq!(single.len(), 1);
        let empty = Block { file: FileId(0), start: 9, end: 5 };
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0, "empty block has zero lines, not a wrapped u32");
    }
}
