//! PhpBB2 (v2.0.23) — a small PHP forum.
//!
//! The paper highlights PhpBB2 for *convergence speed*: MAK reaches its
//! highest coverage in under six minutes while the baselines do not get
//! there in thirty (§V-B). The model is therefore small enough to be
//! exhausted in a few hundred interactions, with an archive-pagination trap
//! that slows depth-first exploration.

use super::blueprint::{Blueprint, BlueprintApp, ModuleKind, ModuleSpec};
use crate::coverage::CoverageMode;

/// Builds the PhpBB2 model.
pub fn phpbb2() -> BlueprintApp {
    Blueprint::new("phpbb2", "phpbb.local")
        .coverage_mode(CoverageMode::Live)
        .latency_ms(600.0)
        .bootstrap_lines(150)
        // Forum index: hub over boards.
        .module(ModuleSpec::new("boards", ModuleKind::Hub, 34, 40))
        // Topic listings: viewtopic-style URLs are reachable under several
        // redundant parameterisations (`t=`, `start=`, `view=`).
        .module(ModuleSpec::new("topics", ModuleKind::Aliased { aliases: 2 }, 40, 38))
        // Posting form: creates new topic pages.
        .module(ModuleSpec::new("post", ModuleKind::ContentCreation { max_items: 10 }, 1, 45))
        // Member list.
        .module(ModuleSpec::new("members", ModuleKind::Hub, 14, 35))
        // Forum search.
        .module(ModuleSpec::new("search", ModuleKind::NoopSearch, 1, 35))
        // BBCode/post validation branches.
        .module(ModuleSpec::new("bbcode", ModuleKind::FormBranches { branches: 12 }, 1, 40))
        // Attachment validation paths.
        .module(ModuleSpec::new("attach", ModuleKind::FormBranches { branches: 10 }, 1, 35))
        // Old-topic archive: a long pagination chain of near-empty pages —
        // depth-first strategies sink many steps here for almost no code.
        .module(ModuleSpec::new("archive", ModuleKind::Pagination, 110, 3))
        .cross_links(8)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    #[allow(unused_imports)]
    use crate::server::WebApp;

    #[test]
    fn size_matches_small_tier() {
        let lines = phpbb2().code_model().total_lines();
        assert!((4_000..8_000).contains(&lines), "got {lines}");
    }

    #[test]
    fn archive_contributes_little_code_despite_many_pages() {
        let app = phpbb2();
        // ~90 archive pages exist but carry ~3 lines each.
        assert!(app.page_count() > 160, "got {}", app.page_count());
    }
}
