//! HotCRP (v2.102) — a PHP conference-review system.
//!
//! The paper's Fig. 1 (top) uses HotCRP to illustrate WebExplor's brittle
//! exact-URL state matching: the review form of a paper is linked under two
//! different URLs that differ only in redundant query parameters (`r=23-8`
//! vs `m=re`), so WebExplor manufactures two states for one page. The model
//! therefore leans on [`ModuleKind::Aliased`]: paper/review pages reachable
//! under several redundantly-parameterised URLs. Review workflows are
//! chain-shaped (form → confirm → done), rewarding depth.

use super::blueprint::{Blueprint, BlueprintApp, ModuleKind, ModuleSpec};
use crate::coverage::CoverageMode;

/// Builds the HotCRP model.
pub fn hotcrp() -> BlueprintApp {
    Blueprint::new("hotcrp", "hotcrp.local")
        .coverage_mode(CoverageMode::Live)
        .latency_ms(650.0)
        .bootstrap_lines(300)
        // Paper pages with aliased inbound links (Fig. 1 top): each page is
        // reachable under 3 distinct URLs.
        .module(ModuleSpec::new("paper", ModuleKind::Aliased { aliases: 3 }, 320, 28))
        // Review wizards: chains whose later steps carry more code.
        .module(ModuleSpec::new("review", ModuleKind::Chain, 80, 45))
        .module(ModuleSpec::new("assign", ModuleKind::Chain, 20, 40))
        // PC / user listings.
        .module(ModuleSpec::new("users", ModuleKind::Hub, 90, 30))
        // Paper search (saved searches return fixed lists).
        .module(ModuleSpec::new("search", ModuleKind::NoopSearch, 1, 40))
        // Comment submission on papers.
        .module(ModuleSpec::new("comments", ModuleKind::ContentCreation { max_items: 8 }, 1, 45))
        // Review-score validation: one branch per submitted score shape.
        .module(ModuleSpec::new("scoreform", ModuleKind::FormBranches { branches: 16 }, 1, 45))
        // PC-members area behind the demo login (the paper crawls HotCRP
        // with a reviewer logged in).
        .module(ModuleSpec::new("pc", ModuleKind::AuthArea, 12, 40))
        .cross_links(12)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Interactable;
    use crate::http::Request;
    use crate::server::AppHost;
    #[allow(unused_imports)]
    use crate::server::WebApp;

    #[test]
    fn size_matches_mid_tier() {
        let lines = hotcrp().code_model().total_lines();
        assert!((22_000..40_000).contains(&lines), "got {lines}");
    }

    #[test]
    fn paper_pages_have_alias_links() {
        let mut host = AppHost::new(Box::new(hotcrp()));
        let resp = host.fetch(&Request::get("http://hotcrp.local/paper/p0".parse().unwrap()));
        let doc = resp.document().unwrap();
        // Count links per normalized-but-alias-stripped destination path.
        let mut by_path = std::collections::HashMap::<String, usize>::new();
        for i in doc.interactables() {
            if let Interactable::Link { href, .. } = i {
                *by_path.entry(href.path().to_owned()).or_default() += 1;
            }
        }
        assert!(
            by_path.values().any(|&c| c >= 3),
            "some paper page should be linked under >=3 URLs: {by_path:?}"
        );
    }
}
