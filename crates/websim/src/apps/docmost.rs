//! Docmost (v0.8.4) — a Node.js collaborative documentation platform.
//!
//! Selected from awesome-selfhosted (§V-A.3) for the documentation domain.
//! Like the other Node.js apps it reports coverage only at process exit
//! ([`CoverageMode::Final`]) and ships substantial unreachable code
//! (real-time collaboration backend), bounding every crawler near 64 %
//! (Table II: 64.7 / 64.0 / 64.0).

use super::blueprint::{Blueprint, BlueprintApp, ModuleKind, ModuleSpec};
use crate::coverage::CoverageMode;

/// Builds the Docmost model.
pub fn docmost() -> BlueprintApp {
    Blueprint::new("docmost", "docmost.local")
        .coverage_mode(CoverageMode::Final)
        .latency_ms(620.0)
        .bootstrap_lines(350)
        .shared_ratio(1.6)
        // Workspaces: hub.
        .module(ModuleSpec::new("spaces", ModuleKind::Hub, 32, 42))
        // Page hierarchies: trees (wiki structure).
        .module(ModuleSpec::new("docs", ModuleKind::Tree { branching: 3 }, 50, 42))
        // Version history: chains.
        .module(ModuleSpec::new("history", ModuleKind::Chain, 18, 40))
        // Page creation.
        .module(ModuleSpec::new("newpage", ModuleKind::ContentCreation { max_items: 10 }, 1, 50))
        // Full-text search.
        .module(ModuleSpec::new("search", ModuleKind::NoopSearch, 1, 40))
        // Markdown-import validation branches.
        .module(ModuleSpec::new("mdimport", ModuleKind::FormBranches { branches: 6 }, 1, 40))
        // Dead weight: websocket collaboration server, unused locales.
        .dead_lines(4_300)
        .cross_links(8)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    #[allow(unused_imports)]
    use crate::server::WebApp;

    #[test]
    fn uses_final_coverage_mode() {
        assert_eq!(docmost().coverage_mode(), CoverageMode::Final);
    }

    #[test]
    fn size_matches_mid_tier_node_app() {
        let lines = docmost().code_model().total_lines();
        assert!((12_000..20_000).contains(&lines), "got {lines}");
    }
}
