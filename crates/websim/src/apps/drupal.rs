//! Drupal (v8.6.15) — a large PHP content-management system.
//!
//! The largest PHP application of the testbed (the paper reports MAK
//! covering 50,445 lines, 76.8 % of the union ground truth). Two traits of
//! the real system matter to the paper's analysis:
//!
//! - the **shortcut module** (Fig. 1 bottom): a private page whose form
//!   appends a new, *broken* link on every submission. QExplore's
//!   attribute-value state abstraction creates a fresh state per submission,
//!   an unbounded state-explosion trap ([`ModuleKind::MutatingTrap`]);
//! - heavy modularity: content sections, taxonomy, administration wizards —
//!   sub-applications with different BFS/DFS-friendly shapes (§IV-D).

use super::blueprint::{Blueprint, BlueprintApp, ModuleKind, ModuleSpec};
use crate::coverage::CoverageMode;

/// Builds the Drupal model.
pub fn drupal() -> BlueprintApp {
    Blueprint::new("drupal", "drupal.local")
        .coverage_mode(CoverageMode::Live)
        .latency_ms(750.0)
        .bootstrap_lines(900)
        // Drupal's render pipeline shares a lot of code per module.
        .shared_ratio(1.4)
        // Node (content) pages: a broad tree, the bulk of the site.
        .module(ModuleSpec::new("node", ModuleKind::Tree { branching: 4 }, 550, 40))
        // Article listings: hub-shaped, BFS-friendly.
        .module(ModuleSpec::new("articles", ModuleKind::Hub, 320, 40))
        // Taxonomy/term pages: a tree whose inbound links carry redundant
        // query parameters (listing filters), i.e. URL aliases.
        .module(ModuleSpec::new("taxonomy", ModuleKind::Aliased { aliases: 2 }, 260, 35))
        // Administration wizards: deep chains where later steps carry more
        // handler code (DFS-friendly).
        .module(ModuleSpec::new("admin", ModuleKind::Chain, 70, 55))
        .module(ModuleSpec::new("config", ModuleKind::Chain, 50, 50))
        // User profiles: flat hub.
        .module(ModuleSpec::new("users", ModuleKind::Hub, 130, 35))
        // Site search: read-only, identical results for any query (§III-B).
        .module(ModuleSpec::new("search", ModuleKind::NoopSearch, 1, 45))
        // Comment posting on nodes.
        .module(ModuleSpec::new("comments", ModuleKind::ContentCreation { max_items: 15 }, 1, 50))
        // Form API validation branches: each submission takes one path.
        .module(ModuleSpec::new("formapi", ModuleKind::FormBranches { branches: 12 }, 1, 60))
        // The shortcut trap page (Fig. 1 bottom) and revision-history
        // pagination sit last so they dominate the tail of the element
        // pool — the depth-first bait.
        .module(ModuleSpec::new("shortcuts", ModuleKind::MutatingTrap { max_links: 40 }, 1, 30))
        .module(ModuleSpec::new("revisions", ModuleKind::Pagination, 260, 3))
        .cross_links(60)
        .external_links(3)
        // The deployment occasionally 500s under crawl load; crawlers must
        // survive transient failures.
        .flaky_every(211)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    #[allow(unused_imports)]
    use crate::server::WebApp;

    #[test]
    fn is_the_largest_php_model() {
        let app = drupal();
        let lines = app.code_model().total_lines();
        assert!((95_000..140_000).contains(&lines), "got {lines}");
    }

    #[test]
    fn has_high_page_count() {
        let app = drupal();
        assert!(app.page_count() > 800, "got {}", app.page_count());
    }
}
