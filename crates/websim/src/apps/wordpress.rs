//! WordPress (v5.1.0) — a large PHP blogging platform.
//!
//! Two traits of the real system shape the model:
//!
//! - §III-B's critique: WordPress ships a **search engine** whose queries
//!   read server state but never change it, so repeating searches yields no
//!   new coverage — yet curiosity-driven rewards keep paying for them
//!   ([`ModuleKind::NoopSearch`]);
//! - the site is far larger than a 30-minute crawl can exhaust (Table II:
//!   best crawler reaches only 50.5 % of the union ground truth), so the
//!   model has more pages than a budgeted run can visit, including long
//!   date-archive pagination chains.

use super::blueprint::{Blueprint, BlueprintApp, ModuleKind, ModuleSpec};
use crate::coverage::CoverageMode;

/// Builds the WordPress model.
pub fn wordpress() -> BlueprintApp {
    Blueprint::new("wordpress", "wordpress.local")
        .coverage_mode(CoverageMode::Live)
        .latency_ms(750.0)
        .bootstrap_lines(700)
        // Far more distinct pages than a 30-minute run can reach, with
        // modest per-page controller code: the union across many runs keeps
        // growing long after any single run plateaus (Table II: 50.5 %).
        .shared_ratio(0.4)
        // Posts: the bulk of the site, a broad tree.
        .module(ModuleSpec::new("posts", ModuleKind::Tree { branching: 4 }, 1200, 15))
        // Static pages: hub.
        .module(ModuleSpec::new("pages", ModuleKind::Hub, 650, 15))
        // Category and tag listings.
        .module(ModuleSpec::new("categories", ModuleKind::Tree { branching: 3 }, 520, 14))
        // Tag listings, aliased (`?tag=x` vs `/tag/x/`-style duplicates).
        .module(ModuleSpec::new("tags", ModuleKind::Aliased { aliases: 2 }, 420, 12))
        // Admin-ish settings chains (reachable but deep).
        .module(ModuleSpec::new("settings", ModuleKind::Chain, 60, 40))
        .module(ModuleSpec::new("customize", ModuleKind::Chain, 40, 38))
        // The famous no-op search (§III-B).
        .module(ModuleSpec::new("search", ModuleKind::NoopSearch, 1, 50))
        // Comments.
        .module(ModuleSpec::new("comments", ModuleKind::ContentCreation { max_items: 12 }, 1, 45))
        // Comment/content validation branches.
        .module(ModuleSpec::new("kses", ModuleKind::FormBranches { branches: 10 }, 1, 45))
        // Date archives: long pagination chains with trivial code — the
        // depth-first trap, last in the pool.
        .module(ModuleSpec::new("archive2019", ModuleKind::Pagination, 300, 3))
        .module(ModuleSpec::new("archive2018", ModuleKind::Pagination, 260, 3))
        .cross_links(70)
        .external_links(4)
        // `?p=`-style shortlinks: 302 redirects into content.
        .redirect_links(25)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    #[allow(unused_imports)]
    use crate::server::WebApp;

    #[test]
    fn is_a_large_model() {
        let lines = wordpress().code_model().total_lines();
        assert!((40_000..70_000).contains(&lines), "got {lines}");
    }

    #[test]
    fn has_more_pages_than_a_budgeted_run_can_visit() {
        // ~900 interactions per 30-minute run (§V-D): the model must exceed
        // that so per-run coverage stays around half the union ground truth.
        assert!(wordpress().page_count() > 1_200, "got {}", wordpress().page_count());
    }
}
