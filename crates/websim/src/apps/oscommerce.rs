//! OsCommerce2 (v2.3.4.1) — a PHP e-commerce storefront.
//!
//! The shopping application of the testbed. Its defining trait is the
//! paper's §IV-C motivating example: a purchase button that executes *new*
//! server-side code only once the cart is non-empty, so an effective
//! crawler must revisit the same element after changing application state —
//! exactly what curiosity-driven rewards fail to incentivize. Modeled with
//! [`ModuleKind::StatefulFlow`], plus catalog trees and a checkout chain.

use super::blueprint::{Blueprint, BlueprintApp, ModuleKind, ModuleSpec};
use crate::coverage::CoverageMode;

/// Builds the OsCommerce2 model.
pub fn oscommerce2() -> BlueprintApp {
    Blueprint::new("oscommerce2", "oscommerce.local")
        .coverage_mode(CoverageMode::Live)
        .latency_ms(620.0)
        .bootstrap_lines(180)
        // Product catalog: category tree.
        .module(ModuleSpec::new("catalog", ModuleKind::Tree { branching: 4 }, 60, 35))
        // Product pages, aliased by tracking/sort parameters.
        .module(ModuleSpec::new("products", ModuleKind::Aliased { aliases: 2 }, 40, 38))
        // The cart + checkout flow (§IV-C): 10 unlockable stages.
        .module(ModuleSpec::new("cart", ModuleKind::StatefulFlow { stages: 12 }, 1, 55))
        // Checkout wizard pages: a chain.
        .module(ModuleSpec::new("checkout", ModuleKind::Chain, 14, 45))
        // Product search (read-only).
        .module(ModuleSpec::new("search", ModuleKind::NoopSearch, 1, 35))
        // Product reviews.
        .module(ModuleSpec::new("reviews", ModuleKind::ContentCreation { max_items: 6 }, 1, 40))
        // Address/payment validation: many input-dependent branches.
        .module(ModuleSpec::new("payform", ModuleKind::FormBranches { branches: 14 }, 1, 45))
        // Account, address-book and currency forms: more validation paths.
        .module(ModuleSpec::new("acctform", ModuleKind::FormBranches { branches: 10 }, 1, 45))
        .module(ModuleSpec::new("addrform", ModuleKind::FormBranches { branches: 12 }, 1, 45))
        .module(ModuleSpec::new("curform", ModuleKind::FormBranches { branches: 8 }, 1, 40))
        .cross_links(10)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    #[allow(unused_imports)]
    use crate::server::WebApp;

    #[test]
    fn size_matches_small_tier() {
        let lines = oscommerce2().code_model().total_lines();
        assert!((8_000..14_000).contains(&lines), "got {lines}");
    }

    #[test]
    fn cart_page_is_routable() {
        use crate::http::Request;
        use crate::server::AppHost;
        let mut host = AppHost::new(Box::new(oscommerce2()));
        let resp = host.fetch(&Request::get("http://oscommerce.local/cart".parse().unwrap()));
        assert!(resp.document().is_some());
    }
}
