//! AddressBook (v8.2.5) — a small PHP contact-management CRUD application.
//!
//! The smallest app of the testbed: a flat set of list/detail/edit pages
//! plus a contact-creation form. All crawlers achieve near-complete
//! coverage on it in the paper (Table II: 99.3 / 98.5 / 96.4 %), so the
//! model is small enough to be exhausted well within one 30-minute budget.

use super::blueprint::{Blueprint, BlueprintApp, ModuleKind, ModuleSpec};
use crate::coverage::CoverageMode;

/// Builds the AddressBook model.
pub fn addressbook() -> BlueprintApp {
    Blueprint::new("addressbook", "addressbook.local")
        .coverage_mode(CoverageMode::Live)
        .latency_ms(600.0)
        .bootstrap_lines(80)
        // Contact list: a hub over per-contact detail pages.
        .module(ModuleSpec::new("contacts", ModuleKind::Hub, 14, 55))
        // Group views: a small tree.
        .module(ModuleSpec::new("groups", ModuleKind::Tree { branching: 3 }, 7, 50))
        // Contact creation: each submission adds a viewable entry.
        .module(ModuleSpec::new("newcontact", ModuleKind::ContentCreation { max_items: 6 }, 1, 40))
        // Simple search over contacts; results are static.
        .module(ModuleSpec::new("search", ModuleKind::NoopSearch, 1, 30))
        // Input validation on the edit form: a handful of branches.
        .module(ModuleSpec::new("validate", ModuleKind::FormBranches { branches: 4 }, 1, 10))
        .cross_links(4)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    #[allow(unused_imports)]
    use crate::server::WebApp;

    #[test]
    fn is_the_smallest_php_app() {
        let app = addressbook();
        let lines = app.code_model().total_lines();
        assert!((900..3_000).contains(&lines), "got {lines}");
    }

    #[test]
    fn has_around_two_dozen_pages() {
        let app = addressbook();
        assert!((20..30).contains(&app.page_count()), "got {}", app.page_count());
    }
}
