//! A generator DSL for simulated web applications.
//!
//! Real web applications are assemblies of *modules* — the paper explicitly
//! leans on this (§IV-D: "modern web applications are often modular,
//! comprising components that act as smaller web applications that benefit
//! from distinct navigation strategies", citing Flask blueprints). The
//! [`Blueprint`] builder composes an application out of modules with
//! different topologies and behaviours, compiling them into a routable,
//! coverage-instrumented [`BlueprintApp`].
//!
//! The module kinds encode the structural patterns the paper's analysis
//! depends on:
//!
//! - [`ModuleKind::Hub`] / [`ModuleKind::Tree`] — breadth-friendly regions;
//! - [`ModuleKind::Chain`] — depth-friendly regions (later pages carry more
//!   code, like multi-step wizards);
//! - [`ModuleKind::ParamDispatch`] — one endpoint serving different content
//!   per query-parameter value (Matomo's `module=` pattern, §III-A);
//! - [`ModuleKind::Aliased`] — multiple URLs for the same page via redundant
//!   query parameters (HotCRP's `r`/`m` links, Fig. 1 top);
//! - [`ModuleKind::MutatingTrap`] — a page whose element list grows on every
//!   interaction with links that only trigger navigation errors (Drupal's
//!   shortcut page, Fig. 1 bottom);
//! - [`ModuleKind::NoopSearch`] — a read-only search endpoint whose results
//!   never change (the WordPress search critique, §III-B);
//! - [`ModuleKind::StatefulFlow`] — a button that executes *new* server code
//!   only after other actions changed session state (the shopping-cart
//!   example, §IV-C);
//! - [`ModuleKind::ContentCreation`] — forms that create new pages/links
//!   (forum posts), bounded by a maximum;
//! - [`ModuleKind::Pagination`] — long chains of near-empty pages (archive
//!   pagination), a coverage trap for depth-first strategies;
//! - [`ModuleKind::FormBranches`] — input-dependent validation branches,
//!   the per-run-incompleteness source behind the §V-B union ground truth;
//! - [`ModuleKind::AuthArea`] — a login-gated area behind demo credentials.
//!
//! Builder-level features add shortlink redirects
//! ([`Blueprint::redirect_links`]) and deterministic transient failures
//! ([`Blueprint::flaky_every`]).

use crate::coverage::{Block, CodeModel, CoverageMode, FileId};
use crate::dom::{Document, Element, Tag};
use crate::http::{Method, Request, Response, Status};
use crate::server::{RequestCtx, WebApp};
use crate::url::Url;
use crate::util::{det_range, hash_str};
use std::collections::HashMap;

/// The behaviour and topology of one application module.
#[derive(Debug, Clone)]
pub enum ModuleKind {
    /// Page 0 is a hub linking to every other page; pages link back.
    Hub,
    /// Page `i` links to page `i + 1`; block sizes grow with depth.
    Chain,
    /// Heap-shaped tree with the given branching factor.
    Tree {
        /// Children per page.
        branching: usize,
    },
    /// All pages share one path and are selected by a query parameter
    /// (Matomo-style `index.php?module=X`).
    ParamDispatch {
        /// The dispatching parameter name.
        param: String,
    },
    /// Tree of branching 3 whose inbound links carry redundant query
    /// parameters, so each page is reachable under several distinct URLs.
    Aliased {
        /// Number of distinct alias URLs per page.
        aliases: usize,
    },
    /// Chain of pages with tiny blocks (archive pagination).
    Pagination,
    /// One page with a form that appends a broken link on every submission.
    MutatingTrap {
        /// Maximum number of broken links the page will accumulate.
        max_links: usize,
    },
    /// One page with a search form; results are identical for every query.
    NoopSearch,
    /// One page with an "add" button and an "action" button; the action
    /// button unlocks a new code block per accumulated session item.
    StatefulFlow {
        /// Number of distinct unlockable stages.
        stages: usize,
    },
    /// One page with a creation form; each submission adds a linked item
    /// page, up to a bound.
    ContentCreation {
        /// Maximum number of creatable items.
        max_items: usize,
    },
    /// One page with a form whose handler takes one of several
    /// input-dependent validation branches per submission. A single run
    /// only ever exercises a few branches, while the union over many runs
    /// and crawlers accumulates all of them — the main reason the paper's
    /// per-run coverage sits below the union ground truth even on small
    /// applications (§V-B).
    FormBranches {
        /// Number of distinct validation branches.
        branches: usize,
    },
    /// A login-gated area: page 0 is a login form; the remaining pages
    /// redirect to it until the session authenticates. The testbed's demo
    /// deployments use fixed demo credentials, so the unified framework's
    /// standard password fill succeeds — mirroring how the paper's setup
    /// crawls applications like HotCRP "with a reviewer logged in".
    AuthArea,
}

/// Specification of one module before compilation.
#[derive(Debug, Clone)]
pub struct ModuleSpec {
    name: String,
    kind: ModuleKind,
    pages: usize,
    lines_per_page: u32,
    in_nav: bool,
    labels: Vec<String>,
}

impl ModuleSpec {
    /// Creates a module with `pages` pages averaging `lines_per_page` lines
    /// of handler code each.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn new(
        name: impl Into<String>,
        kind: ModuleKind,
        pages: usize,
        lines_per_page: u32,
    ) -> Self {
        assert!(pages > 0, "modules must have at least one page");
        ModuleSpec {
            name: name.into(),
            kind,
            pages,
            lines_per_page,
            in_nav: true,
            labels: Vec::new(),
        }
    }

    /// Removes the module entry from the global navigation bar; it is then
    /// only reachable through cross-links.
    #[must_use]
    pub fn hidden_from_nav(mut self) -> Self {
        self.in_nav = false;
        self
    }

    /// Provides human-readable page labels (used as dispatch values and
    /// titles), e.g. Matomo's real module names.
    #[must_use]
    pub fn labels(mut self, labels: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.labels = labels.into_iter().map(Into::into).collect();
        self
    }

    fn label(&self, i: usize) -> String {
        self.labels.get(i).cloned().unwrap_or_else(|| format!("{}{}", self.name, i))
    }
}

/// Builder for a [`BlueprintApp`]. See the [module docs](self) for the
/// vocabulary of module kinds.
///
/// # Examples
///
/// ```
/// use mak_websim::apps::blueprint::{Blueprint, ModuleKind, ModuleSpec};
/// use mak_websim::coverage::CoverageMode;
///
/// let app = Blueprint::new("mini", "mini.local")
///     .coverage_mode(CoverageMode::Live)
///     .bootstrap_lines(40)
///     .module(ModuleSpec::new("blog", ModuleKind::Hub, 10, 50))
///     .module(ModuleSpec::new("wizard", ModuleKind::Chain, 5, 80))
///     .build();
/// assert!(app.page_count() >= 15);
/// ```
#[derive(Debug)]
pub struct Blueprint {
    name: String,
    host: String,
    mode: CoverageMode,
    latency_ms: f64,
    bootstrap_lines: u32,
    dead_lines: u32,
    cross_links: usize,
    external_links: usize,
    shared_ratio: f64,
    redirect_links: usize,
    flaky_every: Option<u64>,
    modules: Vec<ModuleSpec>,
}

impl Blueprint {
    /// Starts a blueprint for an app called `name` served from `host`.
    pub fn new(name: impl Into<String>, host: impl Into<String>) -> Self {
        Blueprint {
            name: name.into(),
            host: host.into(),
            mode: CoverageMode::Live,
            latency_ms: 300.0,
            bootstrap_lines: 50,
            dead_lines: 0,
            cross_links: 0,
            external_links: 0,
            shared_ratio: 1.0,
            redirect_links: 0,
            flaky_every: None,
            modules: Vec::new(),
        }
    }

    /// Adds `n` shortlinks (`/r/<k>`) to the home page, each answering with
    /// an HTTP 302 to a content page — WordPress-style `?p=` permalink
    /// redirects. Exercises the browser's redirect handling and adds yet
    /// another URL-aliasing flavor.
    #[must_use]
    pub fn redirect_links(mut self, n: usize) -> Self {
        self.redirect_links = n;
        self
    }

    /// Makes every `n`-th request fail with a 500 error page — transient
    /// server failures that real crawls encounter and must survive.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (every request failing would make the app
    /// uncrawlable).
    #[must_use]
    pub fn flaky_every(mut self, n: u64) -> Self {
        assert!(n >= 2, "flaky_every needs n >= 2");
        self.flaky_every = Some(n);
        self
    }

    /// Sets how much shared controller/template code each module carries,
    /// as a multiple of the module's summed per-page lines. Framework-heavy
    /// systems (Drupal) sit high; template-light sites sit low. Shared code
    /// is covered as soon as *any* page of the module is visited, which is
    /// what keeps coverage gaps between crawlers at realistic magnitudes.
    #[must_use]
    pub fn shared_ratio(mut self, ratio: f64) -> Self {
        assert!((0.0..=4.0).contains(&ratio), "shared ratio out of range");
        self.shared_ratio = ratio;
        self
    }

    /// Sets the coverage observation mode (PHP apps: live, Node apps: final).
    #[must_use]
    pub fn coverage_mode(mut self, mode: CoverageMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the base page-load latency in virtual milliseconds.
    #[must_use]
    pub fn latency_ms(mut self, ms: f64) -> Self {
        self.latency_ms = ms;
        self
    }

    /// Sets the number of framework lines executed on every request.
    #[must_use]
    pub fn bootstrap_lines(mut self, lines: u32) -> Self {
        self.bootstrap_lines = lines;
        self
    }

    /// Declares lines that no request can ever execute (dead branches,
    /// unused vendored code). Only affects the denominator reported by
    /// final-mode coverage, as with coverage-node.
    #[must_use]
    pub fn dead_lines(mut self, lines: u32) -> Self {
        self.dead_lines = lines;
        self
    }

    /// Adds `n` deterministic cross-module links to enrich the page graph.
    #[must_use]
    pub fn cross_links(mut self, n: usize) -> Self {
        self.cross_links = n;
        self
    }

    /// Adds `n` links to external domains on the home page; crawlers must
    /// treat them as invalid (§V-A assumption ii).
    #[must_use]
    pub fn external_links(mut self, n: usize) -> Self {
        self.external_links = n;
        self
    }

    /// Adds a module.
    #[must_use]
    pub fn module(mut self, spec: ModuleSpec) -> Self {
        self.modules.push(spec);
        self
    }

    /// Compiles the blueprint into a servable application.
    ///
    /// # Panics
    ///
    /// Panics if two modules share a name.
    pub fn build(self) -> BlueprintApp {
        Compiler::new(self).compile()
    }
}

#[derive(Debug, Clone)]
enum Widget {
    Search {
        handler: Block,
        results: Vec<usize>,
    },
    Trap {
        handler: Block,
        max_links: usize,
    },
    Flow {
        add_block: Block,
        empty_block: Block,
        stages: Vec<Block>,
        key: String,
    },
    Create {
        create_block: Block,
        view_block: Block,
        item_blocks: Vec<Block>,
        key: String,
        max: usize,
    },
    Branches {
        handler: Block,
        blocks: Vec<Block>,
    },
    Login {
        handler: Block,
        key: String,
        area: Vec<usize>,
    },
}

#[derive(Debug, Clone)]
struct Page {
    /// Canonical path (no host).
    path: String,
    /// Canonical query parameters.
    query: Vec<(String, String)>,
    title: String,
    base: Block,
    /// The module's shared controller/template code, executed by every page
    /// of the module.
    shared: Option<Block>,
    /// Outgoing links as page indices.
    links: Vec<usize>,
    /// Extra query decorations per outgoing link occurrence (aliases).
    alias_decor: Vec<(usize, String, String)>,
    widget: Option<Widget>,
    /// `(session key, login page index)`: the page redirects to the login
    /// page until the session variable is set.
    auth: Option<(String, usize)>,
}

/// A compiled, servable application. Obtained from [`Blueprint::build`];
/// implements [`WebApp`].
#[derive(Debug)]
pub struct BlueprintApp {
    name: String,
    host: String,
    mode: CoverageMode,
    latency_ms: f64,
    model: CodeModel,
    bootstrap: Block,
    error_block: Block,
    pages: Vec<Page>,
    routes: HashMap<String, usize>,
    dispatch_params: Vec<String>,
    nav_entries: Vec<usize>,
    external_links: usize,
    redirect_links: usize,
    flaky_every: Option<u64>,
    /// Per-page render cache for **static** (widget-less) pages: the DOM of
    /// such a page is a pure function of the compiled blueprint, so it is
    /// rendered once and re-served under each request's URL
    /// ([`Document::reissue`]). Coverage side effects still run per request
    /// in [`BlueprintApp::render_page`]. Interior mutability because
    /// [`WebApp::handle`] takes `&self`; `OnceLock` because app models
    /// are shared across scheduler worker threads (`WebApp: Send + Sync`);
    /// a racing double-init renders the same pure value twice.
    render_cache: Vec<std::sync::OnceLock<Document>>,
    /// Same idea for pages **with** a widget: the static prefix (nav bar,
    /// heading, link list) is built once and deep-cloned per request, which
    /// is cheaper than re-deriving every URL string; the widget then
    /// appends its dynamic elements.
    widget_body_cache: Vec<std::sync::OnceLock<Element>>,
}

struct Compiler {
    bp: Blueprint,
    model: CodeModel,
    pages: Vec<Page>,
    routes: HashMap<String, usize>,
    dispatch_params: Vec<String>,
    nav_entries: Vec<usize>,
}

struct FileAlloc {
    file: FileId,
    cursor: u32,
    capacity: u32,
}

impl FileAlloc {
    fn alloc(&mut self, len: u32) -> Block {
        assert!(
            self.cursor + len - 1 <= self.capacity,
            "file allocation overflow: cursor={} len={} cap={}",
            self.cursor,
            len,
            self.capacity
        );
        let b = Block { file: self.file, start: self.cursor, end: self.cursor + len - 1 };
        self.cursor += len;
        b
    }
}

impl Compiler {
    fn new(bp: Blueprint) -> Self {
        Compiler {
            bp,
            model: CodeModel::new(),
            pages: Vec::new(),
            routes: HashMap::new(),
            dispatch_params: Vec::new(),
            nav_entries: Vec::new(),
        }
    }

    fn compile(mut self) -> BlueprintApp {
        let seed = hash_str(&self.bp.name);

        // Framework bootstrap + error handler live in a synthetic index file.
        let boot_lines = self.bp.bootstrap_lines.max(1);
        let index_file = self.model.declare_file("index.php", boot_lines + 30);
        let bootstrap = Block { file: index_file, start: 1, end: boot_lines };
        let error_block = Block { file: index_file, start: boot_lines + 1, end: boot_lines + 30 };

        // Home page gets a small dedicated file.
        let home_file = self.model.declare_file("home.php", 40);
        let home = Page {
            path: "/".to_owned(),
            query: Vec::new(),
            title: format!("{} — home", self.bp.name),
            base: Block { file: home_file, start: 1, end: 40 },
            shared: None,
            links: Vec::new(),
            alias_decor: Vec::new(),
            widget: None,
            auth: None,
        };
        self.pages.push(home);
        self.routes.insert("/".to_owned(), 0);

        let modules = std::mem::take(&mut self.bp.modules);
        {
            let mut seen = std::collections::HashSet::new();
            for m in &modules {
                assert!(seen.insert(m.name.clone()), "duplicate module name {}", m.name);
            }
        }
        for spec in &modules {
            self.compile_module(spec, seed);
        }

        // Deterministic cross-module links.
        let n_pages = self.pages.len();
        for k in 0..self.bp.cross_links {
            if n_pages < 3 {
                break;
            }
            let src = 1 + (det_range(seed, "xsrc", k as u64, 0, (n_pages - 2) as u32) as usize);
            let dst = 1 + (det_range(seed, "xdst", k as u64, 0, (n_pages - 2) as u32) as usize);
            if src != dst && !self.pages[src].links.contains(&dst) {
                self.pages[src].links.push(dst);
            }
        }

        if self.bp.dead_lines > 0 {
            self.model.declare_file("vendor/bundle.js", self.bp.dead_lines);
        }

        let page_count = self.pages.len();
        BlueprintApp {
            name: self.bp.name,
            host: self.bp.host,
            mode: self.bp.mode,
            latency_ms: self.bp.latency_ms,
            model: self.model,
            bootstrap,
            error_block,
            pages: self.pages,
            routes: self.routes,
            dispatch_params: self.dispatch_params,
            nav_entries: self.nav_entries,
            external_links: self.bp.external_links,
            redirect_links: self.bp.redirect_links,
            flaky_every: self.bp.flaky_every,
            render_cache: (0..page_count).map(|_| std::sync::OnceLock::new()).collect(),
            widget_body_cache: (0..page_count).map(|_| std::sync::OnceLock::new()).collect(),
        }
    }

    /// Size of page `i` of `spec`, deterministically jittered in
    /// `[0.5, 1.5] * lines_per_page`, shaped by topology:
    ///
    /// - chains (wizards) *grow* with depth — finishing a flow pays off,
    ///   which is what makes some applications DFS-friendly;
    /// - trees *shrink* with depth — section/listing pages run more
    ///   controller code than leaf detail pages, so depth-first dives into
    ///   leaves are poor value;
    /// - pagination pages are always tiny (the archive trap).
    fn page_lines(spec: &ModuleSpec, seed: u64, i: usize) -> u32 {
        let mean = spec.lines_per_page.max(2);
        let jitter =
            det_range(seed ^ hash_str(&spec.name), "lines", i as u64, mean / 2, mean + mean / 2);
        match spec.kind {
            ModuleKind::Chain => jitter + (mean * i as u32) / (spec.pages.max(1) as u32),
            ModuleKind::Pagination => 3,
            ModuleKind::Tree { branching } | ModuleKind::Aliased { aliases: branching } => {
                // For `Aliased` the link topology is a fixed ternary tree
                // (see `compile_module`), so depth is computed with b = 3.
                let b = if matches!(spec.kind, ModuleKind::Aliased { .. }) { 3 } else { branching }
                    .max(2);
                let depth = {
                    let mut d = 0u32;
                    let mut j = i;
                    while j > 0 {
                        j = (j - 1) / b;
                        d += 1;
                    }
                    d
                };
                let max_depth = {
                    let mut d = 0u32;
                    let mut j = spec.pages.saturating_sub(1);
                    while j > 0 {
                        j = (j - 1) / b;
                        d += 1;
                    }
                    d.max(1)
                };
                // Scale from 140% at the root down to ~50% at the deepest
                // leaves.
                let scale = 140 - (90 * depth) / max_depth;
                (jitter * scale / 100).max(2)
            }
            _ => jitter,
        }
    }

    fn compile_module(&mut self, spec: &ModuleSpec, seed: u64) {
        // Pre-compute the file size needed for the module's blocks.
        let page_total: u32 = (0..spec.pages).map(|i| Self::page_lines(spec, seed, i)).sum();
        // Shared controller/template code: every page of the module executes
        // it, so touching a module at all covers a sizable chunk — the
        // code-sharing real frameworks exhibit, which keeps coverage gaps
        // between crawlers at realistic (single-digit percent) magnitudes.
        let shared_lines = ((page_total as f64 * self.bp.shared_ratio) as u32).max(10);
        let widget_extra: u32 = match &spec.kind {
            ModuleKind::NoopSearch => 25,
            ModuleKind::MutatingTrap { .. } => 20,
            ModuleKind::StatefulFlow { stages } => 15 + 20 + (*stages as u32) * spec.lines_per_page,
            ModuleKind::ContentCreation { max_items } => 30 + 20 + (*max_items as u32) * 4,
            ModuleKind::FormBranches { branches } => 15 + (*branches as u32) * spec.lines_per_page,
            ModuleKind::AuthArea => 20,
            _ => 0,
        };
        let capacity = page_total + shared_lines + widget_extra;
        let file = self.model.declare_file(format!("modules/{}.php", spec.name), capacity);
        let mut alloc = FileAlloc { file, cursor: 1, capacity };
        let shared = alloc.alloc(shared_lines);

        let first_idx = self.pages.len();
        for i in 0..spec.pages {
            let base = alloc.alloc(Self::page_lines(spec, seed, i));
            let (path, query) = self.page_address(spec, i);
            let page = Page {
                path,
                query,
                title: format!("{} — {}", self.bp.name, spec.label(i)),
                base,
                shared: Some(shared),
                links: Vec::new(),
                alias_decor: Vec::new(),
                widget: None,
                auth: None,
            };
            let idx = self.pages.len();
            let key = route_key_parts(&page.path, &page.query, &self.dispatch_params_with(spec));
            self.pages.push(page);
            self.routes.insert(key, idx);
        }

        // Register dispatch param after addressing (addresses computed above
        // already include it for ParamDispatch modules).
        if let ModuleKind::ParamDispatch { param } = &spec.kind {
            if !self.dispatch_params.contains(param) {
                self.dispatch_params.push(param.clone());
                // Re-key the module's routes now that the param is global.
                for idx in first_idx..self.pages.len() {
                    let page = &self.pages[idx];
                    let key = route_key_parts(&page.path, &page.query, &self.dispatch_params);
                    self.routes.insert(key, idx);
                }
            }
        }

        // Topology: intra-module links.
        let n = spec.pages;
        match &spec.kind {
            ModuleKind::Hub | ModuleKind::ParamDispatch { .. } => {
                for i in 1..n {
                    self.pages[first_idx].links.push(first_idx + i);
                    self.pages[first_idx + i].links.push(first_idx);
                }
            }
            ModuleKind::Chain => {
                for i in 0..n.saturating_sub(1) {
                    self.pages[first_idx + i].links.push(first_idx + i + 1);
                }
            }
            ModuleKind::Pagination => {
                // Real pagination bars link several pages ahead ("2 3 4 »"),
                // so every archive visit floods the *newest* end of a
                // crawler's frontier with more near-empty pages — the trap
                // that drowns depth-first strategies.
                for i in 0..n {
                    for ahead in 1..=3 {
                        if i + ahead < n {
                            self.pages[first_idx + i].links.push(first_idx + i + ahead);
                        }
                    }
                }
            }
            ModuleKind::Tree { branching } => {
                let b = (*branching).max(1);
                for i in 0..n {
                    for c in 1..=b {
                        let child = i * b + c;
                        if child < n {
                            self.pages[first_idx + i].links.push(first_idx + child);
                        }
                    }
                }
            }
            ModuleKind::Aliased { aliases } => {
                let b = 3usize;
                let alias_names = ["r", "m", "ref", "cap"];
                for i in 0..n {
                    for c in 1..=b {
                        let child = i * b + c;
                        if child < n {
                            let dst = first_idx + child;
                            let src = first_idx + i;
                            self.pages[src].links.push(dst);
                            // Additional alias links to the same child with
                            // redundant query parameters (HotCRP r/m).
                            for a in 1..*aliases {
                                self.pages[src].links.push(dst);
                                let pname = alias_names[a % alias_names.len()];
                                let pval = format!(
                                    "{}",
                                    det_range(
                                        seed,
                                        "alias",
                                        (i * 131 + child * 7 + a) as u64,
                                        1,
                                        97
                                    )
                                );
                                let occurrence = self.pages[src].links.len() - 1;
                                self.pages[src].alias_decor.push((
                                    occurrence,
                                    pname.to_owned(),
                                    pval,
                                ));
                            }
                        }
                    }
                }
            }
            ModuleKind::NoopSearch => {
                // Search results link back to a fixed set of earlier pages.
                let results: Vec<usize> =
                    (0..3).map(|k| (k * 7 + 1) % self.pages.len().max(1)).collect();
                let handler = alloc.alloc(25);
                self.pages[first_idx].widget = Some(Widget::Search { handler, results });
            }
            ModuleKind::MutatingTrap { max_links } => {
                let handler = alloc.alloc(20);
                self.pages[first_idx].widget =
                    Some(Widget::Trap { handler, max_links: *max_links });
            }
            ModuleKind::StatefulFlow { stages } => {
                let add_block = alloc.alloc(15);
                let empty_block = alloc.alloc(20);
                let stage_blocks =
                    (0..*stages).map(|_| alloc.alloc(spec.lines_per_page.max(2))).collect();
                self.pages[first_idx].widget = Some(Widget::Flow {
                    add_block,
                    empty_block,
                    stages: stage_blocks,
                    key: format!("{}_count", spec.name),
                });
            }
            ModuleKind::ContentCreation { max_items } => {
                let create_block = alloc.alloc(30);
                let view_block = alloc.alloc(20);
                let item_blocks = (0..*max_items).map(|_| alloc.alloc(4)).collect();
                self.pages[first_idx].widget = Some(Widget::Create {
                    create_block,
                    view_block,
                    item_blocks,
                    key: format!("{}_items", spec.name),
                    max: *max_items,
                });
            }
            ModuleKind::FormBranches { branches } => {
                let handler = alloc.alloc(15);
                let blocks =
                    (0..*branches).map(|_| alloc.alloc(spec.lines_per_page.max(2))).collect();
                self.pages[first_idx].widget = Some(Widget::Branches { handler, blocks });
            }
            ModuleKind::AuthArea => {
                // Page 0 is the login form; the rest form the gated area,
                // chained for some depth. Area pages carry the auth gate.
                let handler = alloc.alloc(20);
                let key = format!("{}_authed", spec.name);
                let area: Vec<usize> = (1..n).map(|i| first_idx + i).collect();
                self.pages[first_idx].widget =
                    Some(Widget::Login { handler, key: key.clone(), area });
                for i in 1..n {
                    self.pages[first_idx + i].auth = Some((key.clone(), first_idx));
                    if i + 1 < n {
                        self.pages[first_idx + i].links.push(first_idx + i + 1);
                    }
                }
            }
        }

        // Related-content links: listing pages link to a couple of sibling
        // pages within the module, as "related"/"recent" widgets do. This
        // keeps the content-to-navigation link ratio realistic.
        if n >= 4 {
            let related = matches!(
                spec.kind,
                ModuleKind::Hub
                    | ModuleKind::Tree { .. }
                    | ModuleKind::Aliased { .. }
                    | ModuleKind::ParamDispatch { .. }
            );
            if related {
                // Hub children carry more related links than tree leaves:
                // real listing/detail pages cross-link densely (tags,
                // "recent", "see also"), which is what makes content pages
                // link-rich and keeps link coverage positively correlated
                // with code coverage (§IV-C) — junk pagination pages stay
                // link-poor.
                let per_page: u64 = match spec.kind {
                    ModuleKind::Hub | ModuleKind::ParamDispatch { .. } => 4,
                    _ => 2,
                };
                let mseed = seed ^ hash_str(&spec.name);
                for i in 0..n {
                    for k in 0..per_page {
                        let j = det_range(mseed, "rel", i as u64 * per_page + k, 0, (n - 1) as u32)
                            as usize;
                        let (src, dst) = (first_idx + i, first_idx + j);
                        if i != j && !self.pages[src].links.contains(&dst) {
                            self.pages[src].links.push(dst);
                        }
                    }
                }
            }
        }

        // Hook the module entry into the home page / navigation.
        self.pages[0].links.push(first_idx);
        if spec.in_nav {
            self.nav_entries.push(first_idx);
        }
    }

    fn dispatch_params_with(&self, spec: &ModuleSpec) -> Vec<String> {
        let mut params = self.dispatch_params.clone();
        if let ModuleKind::ParamDispatch { param } = &spec.kind {
            if !params.contains(param) {
                params.push(param.clone());
            }
        }
        params
    }

    fn page_address(&self, spec: &ModuleSpec, i: usize) -> (String, Vec<(String, String)>) {
        match &spec.kind {
            ModuleKind::ParamDispatch { param } => {
                ("/index.php".to_owned(), vec![(param.clone(), spec.label(i))])
            }
            ModuleKind::NoopSearch
            | ModuleKind::MutatingTrap { .. }
            | ModuleKind::StatefulFlow { .. }
            | ModuleKind::ContentCreation { .. }
            | ModuleKind::FormBranches { .. } => (format!("/{}", spec.name), Vec::new()),
            _ => (format!("/{}/p{}", spec.name, i), Vec::new()),
        }
    }
}

fn route_key_parts(path: &str, query: &[(String, String)], dispatch_params: &[String]) -> String {
    let mut key = path.to_owned();
    let mut dispatch: Vec<(&str, &str)> = query
        .iter()
        .filter(|(k, _)| dispatch_params.iter().any(|d| d == k))
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    dispatch.sort();
    for (k, v) in dispatch {
        key.push_str("::");
        key.push_str(k);
        key.push('=');
        key.push_str(v);
    }
    key
}

impl BlueprintApp {
    /// Number of routable pages (excluding dynamically created item views).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// The canonical URL of page `idx`.
    fn page_url(&self, idx: usize) -> Url {
        let page = &self.pages[idx];
        let mut url = Url::new(self.host.clone(), page.path.clone());
        for (k, v) in &page.query {
            url = url.with_query(k.clone(), v.clone());
        }
        url
    }

    fn route(&self, req: &Request) -> Option<usize> {
        let key = route_key_parts(req.url.path(), req.url.query(), &self.dispatch_params);
        self.routes.get(&key).copied()
    }

    fn nav_bar(&self) -> Element {
        // Real sites keep the global menu short; deeper sections are only
        // reachable through content links (the home page lists everything).
        const NAV_LIMIT: usize = 4;
        let mut nav =
            Element::new(Tag::Nav).child(Element::new(Tag::A).attr("href", "/").text("Home"));
        for &entry in self.nav_entries.iter().take(NAV_LIMIT) {
            let url = self.page_url(entry);
            nav = nav.child(
                Element::new(Tag::A)
                    .attr("href", url.to_string())
                    .text(self.pages[entry].title.clone()),
            );
        }
        nav
    }

    /// The static prefix every render of page `idx` starts from: nav bar,
    /// heading, the home page's external/shortcut links, and the outgoing
    /// link list. Depends only on the compiled blueprint — every `href` it
    /// emits is absolute or path-absolute, which is what makes the cached
    /// render of [`Self::render_page`] independent of the request URL.
    fn build_body(&self, idx: usize) -> Element {
        let page = &self.pages[idx];
        let mut body = Element::new(Tag::Body).child(self.nav_bar());
        body = body.child(Element::new(Tag::H1).text(page.title.clone()));

        if idx == 0 {
            for e in 0..self.external_links {
                body = body.child(
                    Element::new(Tag::A)
                        .attr("href", format!("http://partner{e}.example/promo"))
                        .text("partner"),
                );
            }
            for k in 0..self.redirect_links {
                body = body
                    .child(Element::new(Tag::A).attr("href", format!("/r/{k}")).text("shortlink"));
            }
        }

        let mut list = Element::new(Tag::Ul);
        for (occurrence, &dst) in page.links.iter().enumerate() {
            let mut url = self.page_url(dst);
            for (occ, k, v) in &page.alias_decor {
                if *occ == occurrence {
                    url = url.with_query(k.clone(), v.clone());
                }
            }
            list = list.child(
                Element::new(Tag::Li).child(
                    Element::new(Tag::A)
                        .attr("href", url.to_string())
                        .text(self.pages[dst].title.clone()),
                ),
            );
        }
        body.child(list)
    }

    fn render_page(&self, idx: usize, req: &Request, ctx: &mut RequestCtx<'_>) -> Response {
        let page = &self.pages[idx];
        // Access control runs before the page's own code: unauthenticated
        // requests bounce to the login page without covering gated blocks.
        if let Some((key, login_idx)) = &page.auth {
            if ctx.session().get(key) == 0 {
                return Response::redirect(self.page_url(*login_idx));
            }
        }
        // Coverage side effects are per-request and never cached.
        if let Some(shared) = page.shared {
            ctx.execute(shared);
        }
        ctx.execute(page.base);

        let Some(widget) = &page.widget else {
            // Static page: render once, re-serve under the request URL.
            let proto = self.render_cache[idx].get_or_init(|| {
                Document::new(self.page_url(idx), page.title.clone(), self.build_body(idx))
                    .with_shared_cache()
            });
            return Response::html(proto.reissue(req.url.clone()));
        };
        let prefix = self.widget_body_cache[idx].get_or_init(|| self.build_body(idx)).clone();
        let body = self.render_widget(idx, widget, req, ctx, prefix);
        Response::html(Document::new(req.url.clone(), page.title.clone(), body))
    }

    fn render_widget(
        &self,
        idx: usize,
        widget: &Widget,
        req: &Request,
        ctx: &mut RequestCtx<'_>,
        mut body: Element,
    ) -> Element {
        let page = &self.pages[idx];
        match widget {
            Widget::Search { handler, results } => {
                if let Some(q) = req.param("q") {
                    // Executing a search covers the (small) search handler;
                    // results are the same regardless of the query string —
                    // the WordPress no-op search of §III-B. The query text is
                    // echoed into the page, the classic reflected-parameter
                    // sink black-box scanners look for.
                    ctx.execute(*handler);
                    let mut ul = Element::new(Tag::Ul);
                    for &r in results {
                        let url = self.page_url(r.min(self.pages.len() - 1));
                        ul = ul.child(Element::new(Tag::Li).child(
                            Element::new(Tag::A).attr("href", url.to_string()).text("result"),
                        ));
                    }
                    body = body
                        .child(Element::new(Tag::H2).text(format!("Results for {q}")))
                        .child(ul);
                }
                body.child(
                    Element::new(Tag::Form)
                        .attr("action", page.path.clone())
                        .attr("method", "get")
                        .attr("name", "search")
                        .child(Element::new(Tag::Input).attr("type", "text").attr("name", "q")),
                )
            }
            Widget::Trap { handler, max_links } => {
                if req.method == Method::Post && req.form_value("title").is_some() {
                    ctx.execute(*handler);
                    let sess = ctx.session();
                    if sess.list("trap_links").len() < *max_links {
                        let n = sess.list("trap_links").len();
                        sess.push("trap_links", format!("s{n}"));
                    }
                }
                let items: Vec<String> = ctx.session().list("trap_links").to_vec();
                let mut ul = Element::new(Tag::Ul);
                for item in &items {
                    // Broken shortcut links: arbitrary strings that trigger
                    // navigation errors (Fig. 1 bottom).
                    ul = ul.child(
                        Element::new(Tag::Li).child(
                            Element::new(Tag::A)
                                .attr("href", format!("{}/go/{item}", page.path))
                                .text(item.clone()),
                        ),
                    );
                }
                body.child(ul).child(
                    Element::new(Tag::Form)
                        .attr("action", page.path.clone())
                        .attr("method", "post")
                        .attr("name", "add-shortcut")
                        .child(Element::new(Tag::Input).attr("type", "text").attr("name", "title")),
                )
            }
            Widget::Flow { add_block, empty_block, stages, key } => {
                match req.param("act") {
                    Some("add") if req.method == Method::Post => {
                        ctx.execute(*add_block);
                        let key = key.clone();
                        ctx.session().add(key, 1);
                    }
                    Some("buy") if req.method == Method::Post => {
                        let count = ctx.session().get(key);
                        if count == 0 {
                            // Checkout with an empty cart: error path only.
                            ctx.execute(*empty_block);
                        } else {
                            // Each accumulated item unlocks the next stage of
                            // the purchase pipeline (§IV-C example).
                            let stage = ((count - 1) as usize).min(stages.len() - 1);
                            for block in &stages[..=stage] {
                                ctx.execute(*block);
                            }
                        }
                    }
                    _ => {}
                }
                let count = ctx.session().get(key);
                body.child(Element::new(Tag::P).text(format!("items: {count}")))
                    .child(
                        Element::new(Tag::Button)
                            .attr("name", "add")
                            .attr("formaction", format!("{}?act=add", page.path))
                            .text("Add item"),
                    )
                    .child(
                        Element::new(Tag::Button)
                            .attr("name", "buy")
                            .attr("formaction", format!("{}?act=buy", page.path))
                            .text("Checkout"),
                    )
            }
            Widget::Create { create_block, view_block, item_blocks, key, max } => {
                if req.method == Method::Post && req.form_value("title").is_some() {
                    let count = ctx.session().list(key).len();
                    if count < *max {
                        ctx.execute(*create_block);
                        let key2 = key.clone();
                        let title = req.form_value("title").unwrap_or("item").to_owned();
                        ctx.session().push(key2, title);
                    }
                }
                if let Some(id) = req.param("id") {
                    if let Ok(i) = id.parse::<usize>() {
                        if i < ctx.session().list(key).len() {
                            ctx.execute(*view_block);
                            if let Some(b) = item_blocks.get(i) {
                                ctx.execute(*b);
                            }
                        }
                    }
                }
                let count = ctx.session().list(key).len();
                let mut ul = Element::new(Tag::Ul);
                for i in 0..count {
                    ul = ul.child(
                        Element::new(Tag::Li).child(
                            Element::new(Tag::A)
                                .attr("href", format!("{}?id={i}", page.path))
                                .text(format!("item {i}")),
                        ),
                    );
                }
                body.child(ul).child(
                    Element::new(Tag::Form)
                        .attr("action", page.path.clone())
                        .attr("method", "post")
                        .attr("name", "create")
                        .child(Element::new(Tag::Input).attr("type", "text").attr("name", "title"))
                        .child(Element::new(Tag::Textarea).attr("name", "bodytext")),
                )
            }
            Widget::Login { handler, key, area } => {
                if req.method == Method::Post && req.form_value("password").is_some() {
                    // Demo credentials: any non-empty password logs in (the
                    // testbed deployments ship fixed demo accounts).
                    ctx.execute(*handler);
                    let key2 = key.clone();
                    ctx.session().set(key2, 1);
                }
                if ctx.session().get(key) != 0 {
                    let mut ul = Element::new(Tag::Ul);
                    for &dst in area {
                        let url = self.page_url(dst);
                        ul = ul.child(
                            Element::new(Tag::Li).child(
                                Element::new(Tag::A)
                                    .attr("href", url.to_string())
                                    .text(self.pages[dst].title.clone()),
                            ),
                        );
                    }
                    body.child(Element::new(Tag::H2).text("Members area")).child(ul)
                } else {
                    body.child(
                        Element::new(Tag::Form)
                            .attr("action", page.path.clone())
                            .attr("method", "post")
                            .attr("name", "login")
                            .child(
                                Element::new(Tag::Input).attr("type", "text").attr("name", "user"),
                            )
                            .child(
                                Element::new(Tag::Input)
                                    .attr("type", "password")
                                    .attr("name", "password"),
                            ),
                    )
                }
            }
            Widget::Branches { handler, blocks } => {
                let mut echoed: Option<String> = None;
                if req.method == Method::Post {
                    if let Some(data) = req.form_value("data") {
                        ctx.execute(*handler);
                        // The validation branch taken depends on the
                        // submitted input: each submission exercises one of
                        // the branches, so exhausting them requires many
                        // differently-filled submissions.
                        let idx = (hash_str(data) % blocks.len() as u64) as usize;
                        ctx.execute(blocks[idx]);
                        if idx == 0 {
                            // The "invalid input" branch echoes the value in
                            // its error message — a reflected sink.
                            echoed = Some(format!("invalid value: {data}"));
                        }
                    }
                }
                if let Some(msg) = echoed {
                    body = body.child(Element::new(Tag::P).text(msg));
                }
                body.child(
                    Element::new(Tag::Form)
                        .attr("action", page.path.clone())
                        .attr("method", "post")
                        .attr("name", "validated")
                        .child(Element::new(Tag::Input).attr("type", "text").attr("name", "data")),
                )
            }
        }
    }

    fn server_error_page(&self, req: &Request, ctx: &mut RequestCtx<'_>) -> Response {
        ctx.execute(self.error_block);
        let body = Element::new(Tag::Body)
            .child(Element::new(Tag::H1).text("Internal server error"))
            .child(Element::new(Tag::A).attr("href", "/").text("Back home"));
        let doc = Document::new(req.url.clone(), "500", body);
        Response { status: Status::ServerError, body: crate::http::Body::Html(doc), session: None }
    }

    fn error_page(&self, req: &Request, ctx: &mut RequestCtx<'_>) -> Response {
        ctx.execute(self.error_block);
        let body = Element::new(Tag::Body)
            .child(Element::new(Tag::H1).text("Not found"))
            .child(Element::new(Tag::A).attr("href", "/").text("Back home"));
        let doc = Document::new(req.url.clone(), "404", body);
        Response { status: Status::NotFound, body: crate::http::Body::Html(doc), session: None }
    }
}

impl WebApp for BlueprintApp {
    fn name(&self) -> &str {
        &self.name
    }

    fn seed_url(&self) -> Url {
        Url::new(self.host.clone(), "/")
    }

    fn code_model(&self) -> &CodeModel {
        &self.model
    }

    fn coverage_mode(&self) -> CoverageMode {
        self.mode
    }

    fn base_latency_ms(&self) -> f64 {
        self.latency_ms
    }

    fn handle(&self, req: &Request, ctx: &mut RequestCtx<'_>) -> Response {
        // Deterministic transient failure: every n-th request 500s before
        // reaching any application code beyond the front controller.
        if let Some(n) = self.flaky_every {
            if ctx.request_index().is_multiple_of(n) {
                ctx.execute(self.bootstrap);
                return self.server_error_page(req, ctx);
            }
        }
        ctx.execute(self.bootstrap);
        // Shortlinks: /r/<k> issues a 302 to a content page.
        if let Some(k) = req.url.path().strip_prefix("/r/").and_then(|k| k.parse::<usize>().ok()) {
            if k < self.redirect_links && self.pages.len() > 1 {
                let target = 1 + (k * 13 + 3) % (self.pages.len() - 1);
                return Response::redirect(self.page_url(target));
            }
            return self.error_page(req, ctx);
        }
        match self.route(req) {
            Some(idx) => self.render_page(idx, req, ctx),
            None => self.error_page(req, ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Interactable;
    use crate::server::AppHost;

    fn mini() -> BlueprintApp {
        Blueprint::new("mini", "mini.local")
            .bootstrap_lines(10)
            .module(ModuleSpec::new("hub", ModuleKind::Hub, 5, 20))
            .module(ModuleSpec::new("chain", ModuleKind::Chain, 4, 20))
            .module(ModuleSpec::new(
                "disp",
                ModuleKind::ParamDispatch { param: "module".into() },
                3,
                20,
            ))
            .module(ModuleSpec::new("alias", ModuleKind::Aliased { aliases: 2 }, 4, 20))
            .module(ModuleSpec::new("search", ModuleKind::NoopSearch, 1, 20))
            .module(ModuleSpec::new("trap", ModuleKind::MutatingTrap { max_links: 5 }, 1, 20))
            .module(ModuleSpec::new("cart", ModuleKind::StatefulFlow { stages: 3 }, 1, 20))
            .module(ModuleSpec::new("forum", ModuleKind::ContentCreation { max_items: 4 }, 1, 20))
            .external_links(2)
            .cross_links(3)
            .build()
    }

    fn get(host: &mut AppHost, url: &str) -> Response {
        let mut req = Request::get(url.parse().unwrap());
        req.session = Some(crate::http::SessionId(0));
        host.fetch(&req)
    }

    #[test]
    fn home_links_to_modules() {
        let mut host = AppHost::new(Box::new(mini()));
        let resp = host.fetch(&Request::get("http://mini.local/".parse().unwrap()));
        let doc = resp.document().unwrap();
        let links: Vec<_> = doc
            .interactables()
            .into_iter()
            .filter(|i| matches!(i, Interactable::Link { .. }))
            .collect();
        assert!(links.len() >= 8, "home should link to all modules, got {}", links.len());
    }

    #[test]
    fn unknown_route_is_error_page_with_home_link() {
        let mut host = AppHost::new(Box::new(mini()));
        let resp = get(&mut host, "http://mini.local/definitely/missing");
        assert_eq!(resp.status, Status::NotFound);
        let doc = resp.document().unwrap();
        assert_eq!(doc.interactables().len(), 1);
    }

    #[test]
    fn dispatch_param_selects_page() {
        let mut host = AppHost::new(Box::new(mini()));
        let a = get(&mut host, "http://mini.local/index.php?module=disp1");
        let b = get(&mut host, "http://mini.local/index.php?module=disp2");
        assert_eq!(a.status, Status::Ok);
        assert_eq!(b.status, Status::Ok);
        assert_ne!(a.document().unwrap().title(), b.document().unwrap().title());
    }

    #[test]
    fn dispatch_with_unknown_value_errors() {
        let mut host = AppHost::new(Box::new(mini()));
        let resp = get(&mut host, "http://mini.local/index.php?module=nope");
        assert_eq!(resp.status, Status::NotFound);
    }

    #[test]
    fn aliased_links_reach_same_page() {
        let app = mini();
        let mut host = AppHost::new(Box::new(app));
        let hub = get(&mut host, "http://mini.local/alias/p0");
        let doc = hub.document().unwrap();
        let links: Vec<Url> = doc
            .interactables()
            .into_iter()
            .filter_map(|i| match i {
                Interactable::Link { href, .. } if href.path().starts_with("/alias/p") => {
                    Some(href)
                }
                _ => None,
            })
            .collect();
        assert!(links.len() >= 4, "expected alias duplicates, got {links:?}");
        // Find two links sharing a path but differing as raw URLs: the alias
        // pair. They must resolve to the same page (title equality).
        let pair = links
            .iter()
            .enumerate()
            .find_map(|(i, a)| {
                links[i + 1..]
                    .iter()
                    .find(|b| b.path() == a.path() && b.to_string() != a.to_string())
                    .map(|b| (a.clone(), b.clone()))
            })
            .expect("an alias pair exists");
        let t1 = get(&mut host, &pair.0.to_string());
        let t2 = get(&mut host, &pair.1.to_string());
        assert_eq!(
            t1.document().unwrap().title(),
            t2.document().unwrap().title(),
            "alias URLs serve the same page"
        );
    }

    #[test]
    fn search_is_noop_across_queries() {
        let mut host = AppHost::new(Box::new(mini()));
        let r1 = get(&mut host, "http://mini.local/search?q=alpha");
        let covered_after_first = host.harness_lines_covered();
        let r2 = get(&mut host, "http://mini.local/search?q=beta");
        let covered_after_second = host.harness_lines_covered();
        assert_eq!(covered_after_first, covered_after_second, "second search adds no coverage");
        // Results are structurally identical.
        let links = |r: &Response| {
            r.document()
                .unwrap()
                .interactables()
                .iter()
                .map(Interactable::signature)
                .collect::<Vec<_>>()
        };
        assert_eq!(links(&r1), links(&r2));
    }

    #[test]
    fn trap_grows_element_list_with_broken_links() {
        let mut host = AppHost::new(Box::new(mini()));
        let before = get(&mut host, "http://mini.local/trap");
        let count_before = before.document().unwrap().interactables().len();
        let mut post = Request::post(
            "http://mini.local/trap".parse().unwrap(),
            vec![("title".into(), "x".into())],
        );
        post.session = Some(crate::http::SessionId(0));
        let after = host.fetch(&post);
        let count_after = after.document().unwrap().interactables().len();
        assert_eq!(count_after, count_before + 1, "one broken link added");
        // The broken link 404s.
        let broken = get(&mut host, "http://mini.local/trap/go/s0");
        assert_eq!(broken.status, Status::NotFound);
    }

    #[test]
    fn trap_is_bounded() {
        let mut host = AppHost::new(Box::new(mini()));
        for _ in 0..10 {
            let mut post = Request::post(
                "http://mini.local/trap".parse().unwrap(),
                vec![("title".into(), "x".into())],
            );
            post.session = Some(crate::http::SessionId(0));
            host.fetch(&post);
        }
        let page = get(&mut host, "http://mini.local/trap");
        let n_links = page
            .document()
            .unwrap()
            .interactables()
            .iter()
            .filter(
                |i| matches!(i, Interactable::Link { href, .. } if href.path().contains("/go/")),
            )
            .count();
        assert_eq!(n_links, 5, "trap bounded at max_links");
    }

    #[test]
    fn cart_unlocks_stages_progressively() {
        let mut host = AppHost::new(Box::new(mini()));
        get(&mut host, "http://mini.local/cart");
        let base = host.harness_lines_covered();

        let buy = |host: &mut AppHost| {
            let mut r = Request::post("http://mini.local/cart?act=buy".parse().unwrap(), vec![]);
            r.session = Some(crate::http::SessionId(0));
            host.fetch(&r);
        };
        let add = |host: &mut AppHost| {
            let mut r = Request::post("http://mini.local/cart?act=add".parse().unwrap(), vec![]);
            r.session = Some(crate::http::SessionId(0));
            host.fetch(&r);
        };

        buy(&mut host); // empty cart: error block
        let after_empty_buy = host.harness_lines_covered();
        assert!(after_empty_buy > base);

        add(&mut host);
        buy(&mut host); // stage 0
        let after_first = host.harness_lines_covered();
        assert!(after_first > after_empty_buy, "first real checkout unlocks stage code");

        buy(&mut host); // same stage again: no new lines
        assert_eq!(host.harness_lines_covered(), after_first);

        add(&mut host);
        buy(&mut host); // stage 1: new lines again — the §IV-C dynamics
        assert!(host.harness_lines_covered() > after_first);
    }

    #[test]
    fn content_creation_adds_item_pages() {
        let mut host = AppHost::new(Box::new(mini()));
        let mut post = Request::post(
            "http://mini.local/forum".parse().unwrap(),
            vec![("title".into(), "hello".into())],
        );
        post.session = Some(crate::http::SessionId(0));
        let resp = host.fetch(&post);
        let doc = resp.document().unwrap();
        assert!(doc.interactables().iter().any(
            |i| matches!(i, Interactable::Link { href, .. } if href.query_value("id") == Some("0"))
        ));
        let item = get(&mut host, "http://mini.local/forum?id=0");
        assert_eq!(item.status, Status::Ok);
        // Out-of-range item id covers nothing extra but still renders.
        let before = host.harness_lines_covered();
        get(&mut host, "http://mini.local/forum?id=99");
        assert_eq!(host.harness_lines_covered(), before);
    }

    #[test]
    fn external_links_present_on_home() {
        let mut host = AppHost::new(Box::new(mini()));
        let resp = host.fetch(&Request::get("http://mini.local/".parse().unwrap()));
        let doc = resp.document().unwrap();
        let external = doc
            .interactables()
            .iter()
            .filter(|i| !i.target_url().same_origin(&"http://mini.local/".parse().unwrap()))
            .count();
        assert_eq!(external, 2);
    }

    #[test]
    fn build_is_deterministic() {
        let a = mini();
        let b = mini();
        assert_eq!(a.page_count(), b.page_count());
        assert_eq!(a.code_model().total_lines(), b.code_model().total_lines());
        for i in 0..a.page_count() {
            assert_eq!(a.page_url(i), b.page_url(i));
        }
    }

    #[test]
    fn pagination_pages_are_tiny() {
        let app = Blueprint::new("pg", "pg.local")
            .module(ModuleSpec::new("arch", ModuleKind::Pagination, 50, 100))
            .build();
        // 50 pages * 3 lines (+ shared margin) + bootstrap/home overhead.
        let module_lines: u64 = 150;
        assert!(app.code_model().total_lines() < module_lines + 400);
    }

    #[test]
    #[should_panic(expected = "duplicate module name")]
    fn duplicate_module_names_panic() {
        let _ = Blueprint::new("x", "x.local")
            .module(ModuleSpec::new("a", ModuleKind::Hub, 2, 10))
            .module(ModuleSpec::new("a", ModuleKind::Chain, 2, 10))
            .build();
    }

    fn gated() -> BlueprintApp {
        Blueprint::new("gated", "gated.local")
            .bootstrap_lines(10)
            .module(ModuleSpec::new("pub", ModuleKind::Hub, 4, 20))
            .module(ModuleSpec::new("members", ModuleKind::AuthArea, 5, 30))
            .redirect_links(3)
            .build()
    }

    #[test]
    fn auth_area_redirects_until_login() {
        let mut host = AppHost::new(Box::new(gated()));
        // Establish a session first.
        let first = host.fetch(&Request::get("http://gated.local/".parse().unwrap()));
        let sid = first.session.unwrap();
        let with_session = |host: &mut AppHost, req: Request| {
            let mut req = req;
            req.session = Some(sid);
            host.fetch(&req)
        };

        // Gated page bounces to the login page.
        let resp =
            with_session(&mut host, Request::get("http://gated.local/members/p2".parse().unwrap()));
        assert_eq!(resp.status, Status::Found);
        let crate::http::Body::Redirect(loc) = &resp.body else { panic!("expected redirect") };
        assert_eq!(loc.path(), "/members/p0");
        let covered_before = host.harness_lines_covered();

        // Login with the demo password.
        let login = with_session(
            &mut host,
            Request::post(
                "http://gated.local/members/p0".parse().unwrap(),
                vec![("user".into(), "demo".into()), ("password".into(), "password123".into())],
            ),
        );
        let doc = login.document().unwrap();
        assert!(
            doc.interactables().iter().any(
                |i| matches!(i, Interactable::Link { href, .. } if href.path() == "/members/p2")
            ),
            "members area links appear after login"
        );

        // The gated page now renders and covers new code.
        let resp =
            with_session(&mut host, Request::get("http://gated.local/members/p2".parse().unwrap()));
        assert_eq!(resp.status, Status::Ok);
        assert!(host.harness_lines_covered() > covered_before, "gated code only runs after login");
    }

    #[test]
    fn auth_gate_is_per_session() {
        let mut host = AppHost::new(Box::new(gated()));
        // Session A logs in.
        let a = host.fetch(&Request::get("http://gated.local/".parse().unwrap())).session.unwrap();
        let mut login = Request::post(
            "http://gated.local/members/p0".parse().unwrap(),
            vec![("password".into(), "x".into())],
        );
        login.session = Some(a);
        host.fetch(&login);
        // Session B is still locked out.
        let b = host.fetch(&Request::get("http://gated.local/".parse().unwrap())).session.unwrap();
        assert_ne!(a, b);
        let mut req = Request::get("http://gated.local/members/p2".parse().unwrap());
        req.session = Some(b);
        assert_eq!(host.fetch(&req).status, Status::Found, "other sessions stay gated");
    }

    #[test]
    fn shortlinks_redirect_to_content() {
        let mut host = AppHost::new(Box::new(gated()));
        let home = host.fetch(&Request::get("http://gated.local/".parse().unwrap()));
        let shortlinks = home
            .document()
            .unwrap()
            .interactables()
            .iter()
            .filter(|i| i.target_url().path().starts_with("/r/"))
            .count();
        assert_eq!(shortlinks, 3);
        let resp = host.fetch(&Request::get("http://gated.local/r/0".parse().unwrap()));
        assert_eq!(resp.status, Status::Found);
        // Out-of-range shortlinks 404.
        let resp = host.fetch(&Request::get("http://gated.local/r/99".parse().unwrap()));
        assert_eq!(resp.status, Status::NotFound);
    }

    #[test]
    fn flaky_apps_fail_deterministically() {
        let app = Blueprint::new("fl", "fl.local")
            .flaky_every(3)
            .module(ModuleSpec::new("m", ModuleKind::Hub, 3, 10))
            .build();
        let mut host = AppHost::new(Box::new(app));
        let mut statuses = Vec::new();
        for _ in 0..6 {
            let resp = host.fetch(&Request::get("http://fl.local/".parse().unwrap()));
            statuses.push(resp.status);
        }
        // Requests 3 and 6 fail (1-based counter).
        assert_eq!(
            statuses,
            vec![
                Status::Ok,
                Status::Ok,
                Status::ServerError,
                Status::Ok,
                Status::Ok,
                Status::ServerError
            ]
        );
        // Error pages still carry a way home.
        let resp = host.fetch(&Request::get("http://fl.local/".parse().unwrap()));
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    #[should_panic(expected = "flaky_every needs n >= 2")]
    fn flaky_every_rejects_degenerate_rate() {
        let _ = Blueprint::new("x", "x.local").flaky_every(1);
    }
}
