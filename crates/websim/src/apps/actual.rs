//! Actual (v25.2.1) — a Node.js personal-finance application.
//!
//! One of the three Node.js apps added to diversify the testbed (§V-A.3,
//! selected from awesome-selfhosted with >10k GitHub stars). Coverage is
//! observed with coverage-node, i.e. only at the end of the run
//! ([`CoverageMode::Final`]) but with a tool-reported total-line
//! denominator. A large share of the shipped bundle is unreachable by any
//! crawl (background sync code, unused vendored modules), which is why all
//! crawlers plateau around 64 % in Table II.

use super::blueprint::{Blueprint, BlueprintApp, ModuleKind, ModuleSpec};
use crate::coverage::CoverageMode;

/// Builds the Actual model.
pub fn actual() -> BlueprintApp {
    Blueprint::new("actual", "actual.local")
        .coverage_mode(CoverageMode::Final)
        .latency_ms(620.0)
        .bootstrap_lines(400)
        .shared_ratio(1.6)
        // Account views: hub.
        .module(ModuleSpec::new("accounts", ModuleKind::Hub, 40, 42))
        // Budget tables per month: chain.
        .module(ModuleSpec::new("budget", ModuleKind::Chain, 26, 45))
        // Reports: tree.
        .module(ModuleSpec::new("reports", ModuleKind::Tree { branching: 3 }, 34, 42))
        // Transaction entry: stateful reconciliation flow.
        .module(ModuleSpec::new("transactions", ModuleKind::StatefulFlow { stages: 6 }, 1, 55))
        // Payee management: content creation.
        .module(ModuleSpec::new("payees", ModuleKind::ContentCreation { max_items: 8 }, 1, 45))
        // Import validation branches.
        .module(ModuleSpec::new("import", ModuleKind::FormBranches { branches: 8 }, 1, 40))
        // Dead weight: server-sync and vendored code no crawl can execute.
        .dead_lines(5_400)
        .cross_links(10)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    #[allow(unused_imports)]
    use crate::server::WebApp;

    #[test]
    fn uses_final_coverage_mode() {
        assert_eq!(actual().coverage_mode(), CoverageMode::Final);
    }

    #[test]
    fn dead_code_keeps_max_coverage_around_two_thirds() {
        let app = actual();
        let total = app.code_model().total_lines();
        let dead = 5_400u64;
        let reachable_frac = 1.0 - (dead as f64 / total as f64);
        assert!(
            (0.60..0.75).contains(&reachable_frac),
            "reachable fraction {reachable_frac:.2} should bound coverage near the paper's 64.6%"
        );
    }
}
