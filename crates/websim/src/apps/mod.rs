//! The paper's testbed: eleven simulated web applications (§V-A.3).
//!
//! Eight PHP-style applications expose live (Xdebug-style) coverage and are
//! used for both Fig. 2 and Table II; three Node.js-style applications
//! expose final-only (coverage-node-style) coverage and appear in Table II
//! only. Application versions in the paper: AddressBook v8.2.5, Drupal
//! v8.6.15, HotCRP v2.102, Matomo v4.11.0, OsCommerce2 v2.3.4.1, PhpBB2
//! v2.0.23, Vanilla v2.0.17.10, WordPress v5.1.0, Actual v25.2.1, Docmost
//! v0.8.4, Retro-board v5.5.2.
//!
//! Each model reproduces the *structural* traits of its namesake that the
//! paper's analysis relies on — see each module's docs — with code sizes
//! proportional to the paper's reported line counts.

pub mod blueprint;

mod actual;
mod addressbook;
mod docmost;
mod drupal;
mod hotcrp;
mod matomo;
mod oscommerce;
mod phpbb;
mod retroboard;
mod vanilla;
mod wordpress;

pub use actual::actual;
pub use addressbook::addressbook;
pub use docmost::docmost;
pub use drupal::drupal;
pub use hotcrp::hotcrp;
pub use matomo::matomo;
pub use oscommerce::oscommerce2;
pub use phpbb::phpbb2;
pub use retroboard::retroboard;
pub use vanilla::vanilla;
pub use wordpress::wordpress;

use crate::server::WebApp;

/// The eight PHP-style applications (live coverage; Fig. 2 + Table II).
pub const PHP_APPS: &[&str] =
    &["addressbook", "drupal", "hotcrp", "matomo", "oscommerce2", "phpbb2", "vanilla", "wordpress"];

/// The three Node.js-style applications (final coverage; Table II only).
pub const NODE_APPS: &[&str] = &["actual", "docmost", "retroboard"];

/// All eleven application names, PHP first, as listed in the paper.
pub fn all_names() -> Vec<&'static str> {
    PHP_APPS.iter().chain(NODE_APPS.iter()).copied().collect()
}

/// Builds the application model registered under `name` as a *shareable*
/// handle: the serving layer deploys one `Arc` per app and hands a clone
/// to every concurrent session (see
/// [`AppHost::with_shared`](crate::server::AppHost::with_shared)), so a
/// hundred thousand in-flight crawls of `"drupal"` hold one model
/// allocation between them.
///
/// # Examples
///
/// ```
/// let app = mak_websim::apps::build_shared("drupal").expect("known app");
/// let another = app.clone();
/// assert_eq!(another.name(), "drupal");
/// ```
pub fn build_shared(name: &str) -> Option<std::sync::Arc<dyn WebApp>> {
    build(name).map(std::sync::Arc::from)
}

/// Builds the application model registered under `name`, or `None` for an
/// unknown name.
///
/// # Examples
///
/// ```
/// let app = mak_websim::apps::build("drupal").expect("known app");
/// assert_eq!(app.name(), "drupal");
/// assert!(mak_websim::apps::build("geocities").is_none());
/// ```
pub fn build(name: &str) -> Option<Box<dyn WebApp>> {
    let app: Box<dyn WebApp> = match name {
        "addressbook" => Box::new(addressbook()),
        "drupal" => Box::new(drupal()),
        "hotcrp" => Box::new(hotcrp()),
        "matomo" => Box::new(matomo()),
        "oscommerce2" => Box::new(oscommerce2()),
        "phpbb2" => Box::new(phpbb2()),
        "vanilla" => Box::new(vanilla()),
        "wordpress" => Box::new(wordpress()),
        "actual" => Box::new(actual()),
        "docmost" => Box::new(docmost()),
        "retroboard" => Box::new(retroboard()),
        _ => return None,
    };
    Some(app)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::CoverageMode;
    use crate::http::Request;
    use crate::server::AppHost;

    #[test]
    fn registry_builds_all_eleven() {
        assert_eq!(all_names().len(), 11);
        for name in all_names() {
            let app = build(name).unwrap_or_else(|| panic!("missing app {name}"));
            assert_eq!(app.name(), name);
        }
    }

    #[test]
    fn php_apps_use_live_coverage_node_apps_final() {
        for name in PHP_APPS {
            assert_eq!(build(name).unwrap().coverage_mode(), CoverageMode::Live, "{name}");
        }
        for name in NODE_APPS {
            assert_eq!(build(name).unwrap().coverage_mode(), CoverageMode::Final, "{name}");
        }
    }

    #[test]
    fn every_seed_page_renders_with_interactables() {
        for name in all_names() {
            let mut host = AppHost::new(build(name).unwrap());
            let resp = host.fetch(&Request::get(host.app().seed_url()));
            let doc = resp.document().unwrap_or_else(|| panic!("{name}: seed must render"));
            assert!(
                !doc.interactables().is_empty(),
                "{name}: seed page must expose interactable elements"
            );
            assert!(host.harness_lines_covered() > 0, "{name}: seed request covers code");
        }
    }

    #[test]
    fn app_sizes_are_ordered_like_the_paper() {
        // Paper's coverage magnitudes imply Drupal and WordPress are the
        // largest apps, AddressBook among the smallest.
        let lines = |n: &str| build(n).unwrap().code_model().total_lines();
        assert!(lines("drupal") > lines("oscommerce2"));
        assert!(lines("wordpress") > lines("vanilla"));
        assert!(lines("matomo") > lines("addressbook"));
        assert!(lines("addressbook") < lines("phpbb2"));
    }

    #[test]
    fn models_are_deterministic_across_builds() {
        for name in all_names() {
            let a = build(name).unwrap();
            let b = build(name).unwrap();
            assert_eq!(a.code_model().total_lines(), b.code_model().total_lines(), "{name}");
            assert_eq!(a.seed_url(), b.seed_url(), "{name}");
        }
    }
}
