//! Vanilla (v2.0.17.10) — a small PHP discussion forum.
//!
//! A compact hub-and-tree forum where MAK achieves near-complete coverage
//! (97.7 %) while the Q-learning baselines plateau around 89 % (Table II).
//! The gap comes from a discussion-creation area and a stateful
//! draft-publishing flow that curiosity-driven crawlers under-exploit.

use super::blueprint::{Blueprint, BlueprintApp, ModuleKind, ModuleSpec};
use crate::coverage::CoverageMode;

/// Builds the Vanilla model.
pub fn vanilla() -> BlueprintApp {
    Blueprint::new("vanilla", "vanilla.local")
        .coverage_mode(CoverageMode::Live)
        .latency_ms(600.0)
        .bootstrap_lines(120)
        // Discussion list: hub.
        .module(ModuleSpec::new("discussions", ModuleKind::Hub, 26, 42))
        // Categories: small tree.
        .module(ModuleSpec::new("categories", ModuleKind::Tree { branching: 3 }, 18, 38))
        // New-discussion form.
        .module(ModuleSpec::new(
            "newdiscussion",
            ModuleKind::ContentCreation { max_items: 8 },
            1,
            45,
        ))
        // Draft → publish flow: stages unlock on repeated interaction.
        .module(ModuleSpec::new("drafts", ModuleKind::StatefulFlow { stages: 6 }, 1, 50))
        // Activity feed: short chain.
        .module(ModuleSpec::new("activity", ModuleKind::Chain, 8, 40))
        // Formatting/preview branches on the comment form.
        .module(ModuleSpec::new("preview", ModuleKind::FormBranches { branches: 6 }, 1, 20))
        .cross_links(6)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    #[allow(unused_imports)]
    use crate::server::WebApp;

    #[test]
    fn size_matches_small_tier() {
        let lines = vanilla().code_model().total_lines();
        assert!((3_000..6_500).contains(&lines), "got {lines}");
    }
}
