//! Retro-board (v5.5.2) — a Node.js agile-retrospective board.
//!
//! The only Node.js app also used by the WebExplor paper (§V-A.3). Nearly
//! half of its shipped code is real-time/WebSocket machinery a plain HTTP
//! crawl cannot execute, which is why even the best crawler only reaches
//! 51.9 % (Table II), with a visible MAK advantage (48.9 % for both
//! baselines) driven by a stateful board-editing flow.

use super::blueprint::{Blueprint, BlueprintApp, ModuleKind, ModuleSpec};
use crate::coverage::CoverageMode;

/// Builds the Retro-board model.
pub fn retroboard() -> BlueprintApp {
    Blueprint::new("retroboard", "retroboard.local")
        .coverage_mode(CoverageMode::Final)
        .latency_ms(600.0)
        .bootstrap_lines(280)
        .shared_ratio(1.4)
        // Board list: hub.
        .module(ModuleSpec::new("boards", ModuleKind::Hub, 20, 42))
        // Session archives: chain.
        .module(ModuleSpec::new("archive", ModuleKind::Chain, 14, 40))
        // Creating posts on a board.
        .module(ModuleSpec::new("posts", ModuleKind::ContentCreation { max_items: 8 }, 1, 45))
        // Voting/grouping flow: stages unlock with accumulated votes —
        // the stateful dynamics where MAK's re-interaction scheduling pays.
        .module(ModuleSpec::new("voting", ModuleKind::StatefulFlow { stages: 10 }, 1, 55))
        // Vote-payload validation branches.
        .module(ModuleSpec::new("votecheck", ModuleKind::FormBranches { branches: 8 }, 1, 45))
        // Dead weight: socket.io transport, presence tracking.
        .dead_lines(3_900)
        .cross_links(5)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    #[allow(unused_imports)]
    use crate::server::WebApp;

    #[test]
    fn uses_final_coverage_mode() {
        assert_eq!(retroboard().coverage_mode(), CoverageMode::Final);
    }

    #[test]
    fn dead_fraction_bounds_coverage_near_half() {
        let app = retroboard();
        let total = app.code_model().total_lines();
        let reachable_frac = 1.0 - (3_900.0 / total as f64);
        assert!(
            (0.45..0.62).contains(&reachable_frac),
            "reachable fraction {reachable_frac:.2} should bound coverage near the paper's 51.9%"
        );
    }
}
