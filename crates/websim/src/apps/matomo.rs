//! Matomo (v4.11.0) — a PHP web-analytics platform.
//!
//! §III-A of the paper singles out Matomo's `module=` query parameter:
//! `index.php?module=CoreAdminHome` and `index.php?module=MultiSites` are
//! *different* functionality behind one path, so state abstractions that
//! drop the query string would conflate critical parts of the application.
//! The model's backbone is a large [`ModuleKind::ParamDispatch`] module
//! using the real Matomo plugin names as dispatch values.

use super::blueprint::{Blueprint, BlueprintApp, ModuleKind, ModuleSpec};
use crate::coverage::CoverageMode;

/// A sample of real Matomo 4.x plugin names used as `module=` values.
const PLUGINS: &[&str] = &[
    "CoreHome",
    "CoreAdminHome",
    "MultiSites",
    "VisitsSummary",
    "Actions",
    "Referrers",
    "UserCountry",
    "DevicesDetection",
    "Goals",
    "Ecommerce",
    "SegmentEditor",
    "Dashboard",
    "Widgetize",
    "Annotations",
    "Live",
    "PrivacyManager",
    "SitesManager",
    "UsersManager",
    "Feedback",
    "Marketplace",
];

/// Builds the Matomo model.
pub fn matomo() -> BlueprintApp {
    Blueprint::new("matomo", "matomo.local")
        .coverage_mode(CoverageMode::Live)
        .latency_ms(700.0)
        .bootstrap_lines(500)
        .shared_ratio(1.2)
        // The module dispatcher: 220 dispatch values, the first 20 named
        // after real plugins.
        .module(
            ModuleSpec::new(
                "plugins",
                ModuleKind::ParamDispatch { param: "module".into() },
                360,
                42,
            )
            .labels(PLUGINS.iter().copied()),
        )
        // Report dashboards, aliased by period/date parameters.
        .module(ModuleSpec::new("reports", ModuleKind::Aliased { aliases: 2 }, 260, 40))
        // Settings wizards: chains.
        .module(ModuleSpec::new("settings", ModuleKind::Chain, 70, 50))
        // Segment editor: stateful — building a segment unlocks preview code.
        .module(ModuleSpec::new("segments", ModuleKind::StatefulFlow { stages: 8 }, 1, 60))
        // Site search widget.
        .module(ModuleSpec::new("search", ModuleKind::NoopSearch, 1, 40))
        // Report-export form: format-dependent validation branches.
        .module(ModuleSpec::new("export", ModuleKind::FormBranches { branches: 14 }, 1, 55))
        // Visitor-log pagination: the depth trap, last in the pool.
        .module(ModuleSpec::new("visitlog", ModuleKind::Pagination, 140, 3))
        .cross_links(25)
        // Campaign shortlinks.
        .redirect_links(10)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Request;
    use crate::server::AppHost;
    #[allow(unused_imports)]
    use crate::server::WebApp;

    #[test]
    fn module_param_serves_distinct_plugins() {
        let mut host = AppHost::new(Box::new(matomo()));
        let admin = host.fetch(&Request::get(
            "http://matomo.local/index.php?module=CoreAdminHome".parse().unwrap(),
        ));
        let multi = host.fetch(&Request::get(
            "http://matomo.local/index.php?module=MultiSites".parse().unwrap(),
        ));
        assert_ne!(
            admin.document().unwrap().title(),
            multi.document().unwrap().title(),
            "distinct module= values are distinct functionality"
        );
    }

    #[test]
    fn size_is_large_mid_tier() {
        let lines = matomo().code_model().total_lines();
        assert!((50_000..80_000).contains(&lines), "got {lines}");
    }
}
