//! Minimal HTTP request/response types for the simulator.
//!
//! The crawlers interact with applications exclusively through these types;
//! they are the "HTTP traffic" of the paper's black-box setting (§I).

use crate::dom::Document;
use crate::url::Url;
use std::fmt;

/// HTTP method. The simulated apps only use `GET` and `POST`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Method {
    /// Safe, idempotent retrieval.
    #[default]
    Get,
    /// State-changing submission.
    Post,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
        })
    }
}

impl serde::Serialize for Method {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl serde::Deserialize for Method {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            serde::Value::Str(s) if s == "GET" => Ok(Method::Get),
            serde::Value::Str(s) if s == "POST" => Ok(Method::Post),
            _ => Err(serde::Error::custom("expected \"GET\" or \"POST\"")),
        }
    }
}

/// An HTTP request from the crawler to a simulated application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Target URL (same-origin with the app under test).
    pub url: Url,
    /// Form body for `POST` (or extra query-style data for `GET` submits).
    pub form: Vec<(String, String)>,
    /// Session cookie, if the client has one.
    pub session: Option<SessionId>,
}

impl Request {
    /// A plain `GET` with no body.
    pub fn get(url: Url) -> Self {
        Request { method: Method::Get, url, form: Vec::new(), session: None }
    }

    /// A `POST` with the given form body.
    pub fn post(url: Url, form: Vec<(String, String)>) -> Self {
        Request { method: Method::Post, url, form, session: None }
    }

    /// Returns the first form value named `key`, if any.
    pub fn form_value(&self, key: &str) -> Option<&str> {
        self.form.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Returns a query parameter, falling back to the form body — matching
    /// PHP's `$_REQUEST` lookup the modeled applications rely on.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.url.query_value(key).or_else(|| self.form_value(key))
    }
}

/// Opaque session identifier carried in the cookie.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub(crate) u64);

impl SessionId {
    /// Reconstructs a session id from its raw value — for wire-format
    /// parsing ([`crate::headers`]) and tests. Server-side allocation goes
    /// through [`SessionStore`](crate::session::SessionStore).
    pub fn from_raw(raw: u64) -> Self {
        SessionId(raw)
    }

    /// The raw value, for checkpoint serialization; round-trips through
    /// [`SessionId::from_raw`].
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sess-{:016x}", self.0)
    }
}

impl serde::Serialize for SessionId {
    fn to_value(&self) -> serde::Value {
        serde::Value::UInt(self.0)
    }
}

impl serde::Deserialize for SessionId {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        u64::from_value(value).map(SessionId)
    }
}

/// HTTP status code subset used by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// 200.
    Ok,
    /// 302, with a `Location`.
    Found,
    /// 404.
    NotFound,
    /// 500.
    ServerError,
}

impl Status {
    /// The numeric code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::Found => 302,
            Status::NotFound => 404,
            Status::ServerError => 500,
        }
    }

    /// The inverse of [`Status::code`], for checkpoint deserialization.
    pub fn from_code(code: u16) -> Option<Self> {
        match code {
            200 => Some(Status::Ok),
            302 => Some(Status::Found),
            404 => Some(Status::NotFound),
            500 => Some(Status::ServerError),
            _ => None,
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

impl serde::Serialize for Status {
    fn to_value(&self) -> serde::Value {
        serde::Value::UInt(u64::from(self.code()))
    }
}

impl serde::Deserialize for Status {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let code = u16::from_value(value)?;
        Status::from_code(code).ok_or_else(|| serde::Error::custom("unknown status code"))
    }
}

/// The payload of a [`Response`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Body {
    /// A rendered HTML document.
    Html(Document),
    /// A redirect to another URL (status [`Status::Found`]).
    Redirect(Url),
    /// An empty body (error statuses).
    Empty,
}

/// An HTTP response from a simulated application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: Status,
    /// Response payload.
    pub body: Body,
    /// Session cookie set by the server (always echoed once established).
    pub session: Option<SessionId>,
}

impl Response {
    /// A `200 OK` HTML page.
    pub fn html(doc: Document) -> Self {
        Response { status: Status::Ok, body: Body::Html(doc), session: None }
    }

    /// A `302 Found` redirect.
    pub fn redirect(to: Url) -> Self {
        Response { status: Status::Found, body: Body::Redirect(to), session: None }
    }

    /// A `404 Not Found` with empty body.
    pub fn not_found() -> Self {
        Response { status: Status::NotFound, body: Body::Empty, session: None }
    }

    /// The document, if this is a successful HTML response.
    pub fn document(&self) -> Option<&Document> {
        match &self.body {
            Body::Html(doc) => Some(doc),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::{Element, Tag};

    #[test]
    fn request_param_prefers_query_over_form() {
        let url: Url = "http://h/p?x=query".parse().unwrap();
        let req = Request::post(url, vec![("x".into(), "form".into()), ("y".into(), "2".into())]);
        assert_eq!(req.param("x"), Some("query"));
        assert_eq!(req.param("y"), Some("2"));
        assert_eq!(req.param("z"), None);
    }

    #[test]
    fn status_codes() {
        assert_eq!(Status::Ok.code(), 200);
        assert_eq!(Status::Found.code(), 302);
        assert_eq!(Status::NotFound.code(), 404);
        assert_eq!(Status::ServerError.code(), 500);
    }

    #[test]
    fn response_document_accessor() {
        let doc = Document::new("http://h/".parse().unwrap(), "t", Element::new(Tag::Body));
        let resp = Response::html(doc);
        assert!(resp.document().is_some());
        assert!(Response::not_found().document().is_none());
        assert!(Response::redirect("http://h/x".parse().unwrap()).document().is_none());
    }

    #[test]
    fn session_id_display_is_stable() {
        assert_eq!(SessionId(7).to_string(), "sess-0000000000000007");
    }
}
