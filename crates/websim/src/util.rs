//! Small deterministic hashing helpers.
//!
//! The simulator derives all "arbitrary" structure (page sizes, alias
//! parameter names, garbage strings) from stable 64-bit mixes of names and
//! indices, so an application model is byte-identical across runs and
//! platforms — the deployed apps of the paper's testbed do not change
//! between experiments, and neither do ours.

/// SplitMix64 finalizer: a fast, well-distributed 64-bit mixer.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a offset basis: the initial accumulator for [`fnv_fold`].
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into an FNV-1a accumulator. Streaming-compatible with
/// [`hash_str`]: folding a string's bytes in any chunking, starting from
/// [`FNV_OFFSET`], reaches the same accumulator as folding them at once —
/// which lets hot paths hash composite keys without concatenating them.
pub fn fnv_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable 64-bit hash of a string (FNV-1a folded through [`mix64`]).
pub fn hash_str(s: &str) -> u64 {
    mix64(fnv_fold(FNV_OFFSET, s.as_bytes()))
}

/// Deterministic value in `[lo, hi]` derived from `(seed, tag, index)`.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn det_range(seed: u64, tag: &str, index: u64, lo: u32, hi: u32) -> u32 {
    assert!(lo <= hi, "det_range: lo > hi");
    let span = u64::from(hi - lo) + 1;
    let h = mix64(seed ^ hash_str(tag) ^ mix64(index));
    lo + (h % span) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_changes_input() {
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn hash_str_is_stable_and_distinguishes() {
        assert_eq!(hash_str("drupal"), hash_str("drupal"));
        assert_ne!(hash_str("drupal"), hash_str("matomo"));
        assert_ne!(hash_str(""), 0);
    }

    #[test]
    fn det_range_within_bounds_and_stable() {
        for i in 0..100 {
            let v = det_range(42, "page", i, 30, 90);
            assert!((30..=90).contains(&v));
            assert_eq!(v, det_range(42, "page", i, 30, 90));
        }
    }

    #[test]
    fn det_range_degenerate_interval() {
        assert_eq!(det_range(1, "x", 0, 7, 7), 7);
    }
}
