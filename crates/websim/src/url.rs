//! A small, deterministic URL type.
//!
//! The simulator does not need the full generality of WHATWG URLs; it needs
//! exactly the pieces the paper's crawlers reason about: scheme, host, path
//! and an **ordered** query string. Ordering matters because WebExplor's
//! state abstraction performs *exact* URL matching (§III-A of the paper), so
//! `?a=1&b=2` and `?b=2&a=1` must be distinguishable, while the normalized
//! form used for link-coverage accounting sorts parameters.

use std::fmt;
use std::sync::OnceLock;

/// An absolute URL as used by the simulated web applications.
///
/// # Examples
///
/// ```
/// use mak_websim::url::Url;
///
/// let url: Url = "http://app.local/review?p=8&r=23".parse()?;
/// assert_eq!(url.host(), "app.local");
/// assert_eq!(url.path(), "/review");
/// assert_eq!(url.query_value("p"), Some("8"));
/// # Ok::<(), mak_websim::url::ParseUrlError>(())
/// ```
#[derive(Clone)]
pub struct Url {
    scheme: String,
    host: String,
    path: String,
    query: Vec<(String, String)>,
    /// Lazily computed [`Url::normalized`] form. Purely derived data: it is
    /// excluded from equality, ordering, hashing and `Debug`, and every
    /// constructor/mutator leaves it unset. Cloning preserves a filled
    /// cache, which is what makes shared (`Arc`-held) documents cheap to
    /// re-normalize.
    normalized: OnceLock<Box<str>>,
}

// Manual impls over the four semantic fields only (same field order the
// former `derive` used), so the cache cannot influence comparisons.
impl PartialEq for Url {
    fn eq(&self, other: &Self) -> bool {
        self.scheme == other.scheme
            && self.host == other.host
            && self.path == other.path
            && self.query == other.query
    }
}

impl Eq for Url {}

impl std::hash::Hash for Url {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.scheme.hash(state);
        self.host.hash(state);
        self.path.hash(state);
        self.query.hash(state);
    }
}

impl PartialOrd for Url {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Url {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (&self.scheme, &self.host, &self.path, &self.query).cmp(&(
            &other.scheme,
            &other.host,
            &other.path,
            &other.query,
        ))
    }
}

impl fmt::Debug for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Url")
            .field("scheme", &self.scheme)
            .field("host", &self.host)
            .field("path", &self.path)
            .field("query", &self.query)
            .finish()
    }
}

/// Error returned when parsing a malformed URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUrlError {
    input: String,
    reason: &'static str,
}

impl fmt::Display for ParseUrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid URL `{}`: {}", self.input, self.reason)
    }
}

impl std::error::Error for ParseUrlError {}

impl Url {
    /// Builds a URL from parts. The path is normalized to start with `/`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mak_websim::url::Url;
    /// let url = Url::new("app.local", "/index.php");
    /// assert_eq!(url.to_string(), "http://app.local/index.php");
    /// ```
    pub fn new(host: impl Into<String>, path: impl Into<String>) -> Self {
        let mut path = path.into();
        if !path.starts_with('/') {
            path.insert(0, '/');
        }
        Url {
            scheme: "http".to_owned(),
            host: host.into(),
            path,
            query: Vec::new(),
            normalized: OnceLock::new(),
        }
    }

    /// Returns a copy of this URL with `key=value` appended to the query.
    #[must_use]
    pub fn with_query(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.query.push((key.into(), value.into()));
        self.normalized = OnceLock::new();
        self
    }

    /// The URL scheme (always `http` for simulated apps).
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// The host component, e.g. `drupal.local`.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The path component, always starting with `/`.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The ordered query parameters.
    pub fn query(&self) -> &[(String, String)] {
        &self.query
    }

    /// The value of the first query parameter named `key`, if any.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Whether this URL points at the same host as `other`.
    ///
    /// The crawlers in the paper mark actions leading to external domains as
    /// invalid (§V-A, assumption ii); this is the check they use.
    pub fn same_origin(&self, other: &Url) -> bool {
        self.scheme == other.scheme && self.host == other.host
    }

    /// The canonical string form used for link-coverage accounting: query
    /// parameters sorted by key, duplicate parameters retained.
    ///
    /// Two links that differ only in parameter *order* denote the same
    /// resource and must count once towards link coverage, while links that
    /// differ in parameter *values* (e.g. Matomo's `module=` dispatch) must
    /// count separately.
    ///
    /// The form is computed once per `Url` value and cached, so repeated
    /// calls on a long-lived URL (e.g. one held by a cached document) are
    /// allocation-free.
    pub fn normalized(&self) -> &str {
        self.normalized.get_or_init(|| {
            let mut q = self.query.clone();
            q.sort();
            let mut out = format!("{}://{}{}", self.scheme, self.host, self.path);
            for (i, (k, v)) in q.iter().enumerate() {
                out.push(if i == 0 { '?' } else { '&' });
                out.push_str(k);
                out.push('=');
                out.push_str(v);
            }
            out.into_boxed_str()
        })
    }

    /// Resolves `href` against this URL, as a browser would.
    ///
    /// Absolute URLs are parsed as-is; path-absolute references (`/x`) keep
    /// the host; other references are treated as relative to the current
    /// path's directory.
    ///
    /// # Errors
    ///
    /// Returns [`ParseUrlError`] if `href` is absolute and malformed.
    pub fn join(&self, href: &str) -> Result<Url, ParseUrlError> {
        if href.contains("://") {
            return href.parse();
        }
        let (path_part, query_part) = match href.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (href, None),
        };
        let path = if path_part.starts_with('/') {
            path_part.to_owned()
        } else if path_part.is_empty() {
            self.path.clone()
        } else {
            let dir = match self.path.rfind('/') {
                Some(idx) => &self.path[..=idx],
                None => "/",
            };
            format!("{dir}{path_part}")
        };
        let mut url = Url::new(self.host.clone(), path);
        url.scheme = self.scheme.clone();
        if let Some(q) = query_part {
            url.query = parse_query(q);
        }
        Ok(url)
    }
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_owned(), v.to_owned()),
            None => (kv.to_owned(), String::new()),
        })
        .collect()
}

impl std::str::FromStr for Url {
    type Err = ParseUrlError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason| ParseUrlError { input: s.to_owned(), reason };
        let rest =
            s.strip_prefix("http://").ok_or_else(|| err("only http:// URLs are supported"))?;
        if rest.is_empty() {
            return Err(err("missing host"));
        }
        let (host, tail) = match rest.find(['/', '?']) {
            Some(idx) => (&rest[..idx], &rest[idx..]),
            None => (rest, ""),
        };
        if host.is_empty() {
            return Err(err("missing host"));
        }
        let (path, query) = match tail.split_once('?') {
            Some((p, q)) => (p, parse_query(q)),
            None => (tail, Vec::new()),
        };
        let path = if path.is_empty() { "/".to_owned() } else { path.to_owned() };
        Ok(Url {
            scheme: "http".to_owned(),
            host: host.to_owned(),
            path,
            query,
            normalized: OnceLock::new(),
        })
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}{}", self.scheme, self.host, self.path)?;
        for (i, (k, v)) in self.query.iter().enumerate() {
            write!(f, "{}{k}={v}", if i == 0 { '?' } else { '&' })?;
        }
        Ok(())
    }
}

// Checkpoints persist URLs as their display string; `Display → parse` is a
// fixpoint (query order is preserved), so restored URLs compare equal and
// normalize identically.
impl serde::Serialize for Url {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl serde::Deserialize for Url {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            serde::Value::Str(s) => {
                s.parse().map_err(|_| serde::Error::custom("invalid URL in checkpoint"))
            }
            _ => Err(serde::Error::custom("expected URL string")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let s = "http://app.local/index.php?module=CoreAdminHome&action=index";
        let url: Url = s.parse().unwrap();
        assert_eq!(url.to_string(), s);
        assert_eq!(url.host(), "app.local");
        assert_eq!(url.path(), "/index.php");
        assert_eq!(url.query_value("module"), Some("CoreAdminHome"));
    }

    #[test]
    fn parse_host_only() {
        let url: Url = "http://app.local".parse().unwrap();
        assert_eq!(url.path(), "/");
        assert!(url.query().is_empty());
    }

    #[test]
    fn parse_rejects_non_http() {
        assert!("https://x/".parse::<Url>().is_err());
        assert!("ftp://x/".parse::<Url>().is_err());
        assert!("not a url".parse::<Url>().is_err());
        assert!("http://".parse::<Url>().is_err());
    }

    #[test]
    fn query_without_value() {
        let url: Url = "http://h/p?flag&x=1".parse().unwrap();
        assert_eq!(url.query_value("flag"), Some(""));
        assert_eq!(url.query_value("x"), Some("1"));
        assert_eq!(url.query_value("missing"), None);
    }

    #[test]
    fn normalized_sorts_query_keys() {
        let a: Url = "http://h/p?b=2&a=1".parse().unwrap();
        let b: Url = "http://h/p?a=1&b=2".parse().unwrap();
        assert_ne!(a, b, "exact matching distinguishes parameter order");
        assert_eq!(a.normalized(), b.normalized());
    }

    #[test]
    fn normalized_distinguishes_values() {
        let a: Url = "http://h/index.php?module=CoreAdminHome".parse().unwrap();
        let b: Url = "http://h/index.php?module=MultiSites".parse().unwrap();
        assert_ne!(a.normalized(), b.normalized());
    }

    #[test]
    fn join_absolute() {
        let base: Url = "http://h/a/b".parse().unwrap();
        let joined = base.join("http://other/x").unwrap();
        assert_eq!(joined.host(), "other");
    }

    #[test]
    fn join_path_absolute_keeps_host() {
        let base: Url = "http://h/a/b?q=1".parse().unwrap();
        let joined = base.join("/c?x=2").unwrap();
        assert_eq!(joined.to_string(), "http://h/c?x=2");
    }

    #[test]
    fn join_relative_uses_directory() {
        let base: Url = "http://h/dir/page.php".parse().unwrap();
        let joined = base.join("other.php?a=1").unwrap();
        assert_eq!(joined.to_string(), "http://h/dir/other.php?a=1");
    }

    #[test]
    fn join_empty_keeps_path() {
        let base: Url = "http://h/dir/page.php".parse().unwrap();
        let joined = base.join("?a=1").unwrap();
        assert_eq!(joined.to_string(), "http://h/dir/page.php?a=1");
    }

    #[test]
    fn same_origin_checks_host() {
        let a: Url = "http://h/a".parse().unwrap();
        let b: Url = "http://h/b?x=1".parse().unwrap();
        let c: Url = "http://external.example/a".parse().unwrap();
        assert!(a.same_origin(&b));
        assert!(!a.same_origin(&c));
    }

    #[test]
    fn with_query_appends_in_order() {
        let url = Url::new("h", "p").with_query("a", "1").with_query("b", "2");
        assert_eq!(url.to_string(), "http://h/p?a=1&b=2");
    }

    #[test]
    fn display_never_empty() {
        let url = Url::new("h", "/");
        assert_eq!(url.to_string(), "http://h/");
    }
}
