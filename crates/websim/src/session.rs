//! Server-side session state.
//!
//! The modeled applications are stateful: a shopping cart remembers its
//! items, a forum remembers posted messages, Drupal's shortcut page
//! remembers added shortcuts. Sessions give the simulator the server-side
//! memory the paper's shopping-cart example (§IV-C) relies on: the same
//! button can execute *new* code once earlier interactions changed state.

use crate::http::SessionId;
use std::collections::HashMap;

/// A single session's variables.
#[derive(Debug, Clone, Default)]
pub struct Session {
    vars: HashMap<String, i64>,
    lists: HashMap<String, Vec<String>>,
}

impl Session {
    /// Creates an empty session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads an integer variable, defaulting to 0.
    pub fn get(&self, key: &str) -> i64 {
        self.vars.get(key).copied().unwrap_or(0)
    }

    /// Sets an integer variable.
    pub fn set(&mut self, key: impl Into<String>, value: i64) {
        self.vars.insert(key.into(), value);
    }

    /// Adds `delta` to an integer variable and returns the new value.
    pub fn add(&mut self, key: impl Into<String>, delta: i64) -> i64 {
        let entry = self.vars.entry(key.into()).or_insert(0);
        *entry += delta;
        *entry
    }

    /// Appends to a list variable (e.g. Drupal's shortcut list, forum
    /// posts) and returns the new length.
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<String>) -> usize {
        let list = self.lists.entry(key.into()).or_default();
        list.push(value.into());
        list.len()
    }

    /// Reads a list variable.
    pub fn list(&self, key: &str) -> &[String] {
        self.lists.get(key).map(Vec::as_slice).unwrap_or(&[])
    }
}

// Checkpoint serialization. The backing maps are hash maps, so both
// collections are emitted key-sorted: checkpoint bytes must be a pure
// function of session *content*, never of hasher state.
impl serde::Serialize for Session {
    fn to_value(&self) -> serde::Value {
        let mut vars: Vec<(&String, i64)> = self.vars.iter().map(|(k, v)| (k, *v)).collect();
        vars.sort();
        let mut lists: Vec<(&String, &Vec<String>)> = self.lists.iter().collect();
        lists.sort();
        serde::Value::Object(vec![
            (
                "vars".to_owned(),
                serde::Value::Array(
                    vars.iter().map(|(k, v)| (k.as_str(), *v).to_value()).collect(),
                ),
            ),
            (
                "lists".to_owned(),
                serde::Value::Array(
                    lists.iter().map(|(k, v)| (k.as_str(), v.as_slice()).to_value()).collect(),
                ),
            ),
        ])
    }
}

impl serde::Deserialize for Session {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(entries) = value else {
            return Err(serde::Error::custom("expected Session object"));
        };
        let vars: Vec<(String, i64)> = serde::__field(entries, "vars")?;
        let lists: Vec<(String, Vec<String>)> = serde::__field(entries, "lists")?;
        Ok(Session { vars: vars.into_iter().collect(), lists: lists.into_iter().collect() })
    }
}

/// Allocates and stores sessions for one hosted application.
#[derive(Debug, Default)]
pub struct SessionStore {
    sessions: HashMap<SessionId, Session>,
    next: u64,
}

impl SessionStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh session and returns its id.
    pub fn create(&mut self) -> SessionId {
        let id = SessionId(self.next);
        self.next += 1;
        self.sessions.insert(id, Session::new());
        id
    }

    /// Returns the session for `id`, creating it if the cookie is unknown
    /// (expired server state), as PHP's session handling does.
    pub fn get_or_create(&mut self, id: Option<SessionId>) -> (SessionId, &mut Session) {
        let id = match id {
            Some(id) if self.sessions.contains_key(&id) => id,
            _ => self.create(),
        };
        (id, self.sessions.get_mut(&id).expect("just ensured present"))
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no sessions exist.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

// Sessions are emitted sorted by id for deterministic checkpoint bytes.
impl serde::Serialize for SessionStore {
    fn to_value(&self) -> serde::Value {
        let mut sessions: Vec<(&SessionId, &Session)> = self.sessions.iter().collect();
        sessions.sort_by_key(|(id, _)| **id);
        serde::Value::Object(vec![
            ("next".to_owned(), serde::Value::UInt(self.next)),
            (
                "sessions".to_owned(),
                serde::Value::Array(
                    sessions.iter().map(|(id, s)| (id.raw(), *s).to_value()).collect(),
                ),
            ),
        ])
    }
}

impl serde::Deserialize for SessionStore {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(entries) = value else {
            return Err(serde::Error::custom("expected SessionStore object"));
        };
        let next: u64 = serde::__field(entries, "next")?;
        let sessions: Vec<(u64, Session)> = serde::__field(entries, "sessions")?;
        Ok(SessionStore {
            next,
            sessions: sessions.into_iter().map(|(id, s)| (SessionId(id), s)).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vars_default_to_zero() {
        let s = Session::new();
        assert_eq!(s.get("cart_items"), 0);
    }

    #[test]
    fn add_accumulates() {
        let mut s = Session::new();
        assert_eq!(s.add("cart_items", 1), 1);
        assert_eq!(s.add("cart_items", 2), 3);
        s.set("cart_items", 0);
        assert_eq!(s.get("cart_items"), 0);
    }

    #[test]
    fn lists_grow() {
        let mut s = Session::new();
        assert_eq!(s.push("shortcuts", "a"), 1);
        assert_eq!(s.push("shortcuts", "b"), 2);
        assert_eq!(s.list("shortcuts"), ["a", "b"]);
        assert!(s.list("other").is_empty());
    }

    #[test]
    fn store_reuses_known_cookie() {
        let mut store = SessionStore::new();
        let (id, sess) = store.get_or_create(None);
        sess.set("x", 42);
        let (id2, sess2) = store.get_or_create(Some(id));
        assert_eq!(id, id2);
        assert_eq!(sess2.get("x"), 42);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn store_replaces_unknown_cookie() {
        let mut store = SessionStore::new();
        let (id, _) = store.get_or_create(Some(SessionId(999)));
        assert_ne!(id, SessionId(999));
        assert!(!store.is_empty());
    }
}
