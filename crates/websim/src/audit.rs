//! Static reachability audit of application models.
//!
//! The testbed's value depends on its models being *sound*: every declared
//! page should be reachable by some sequence of black-box interactions, or
//! deliberately gated (login areas) or dead (Node.js bundles). The auditor
//! walks an application exhaustively — following links, submitting forms
//! with representative values, logging in, clicking buttons repeatedly —
//! and reports what a maximal crawler could ever reach. The test suite runs
//! it over all eleven models, so a mis-wired module fails CI rather than
//! silently skewing an experiment.

use crate::dom::{FieldKind, Interactable};
use crate::http::{Body, Method, Request, Response, SessionId};
use crate::server::{AppHost, WebApp};
use std::collections::{BTreeSet, VecDeque};

/// What the exhaustive walk reached.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Distinct normalized same-origin URLs visited.
    pub urls_visited: usize,
    /// Server lines covered by the walk.
    pub lines_covered: u64,
    /// Total declared lines (including deliberately dead code).
    pub total_declared: u64,
    /// Requests issued.
    pub requests: u64,
    /// Executed blocks that addressed undeclared files or lines — nonzero
    /// means the model declares out-of-range blocks and is unsound.
    pub clamped_blocks: u64,
}

impl AuditReport {
    /// Covered fraction of the declared total.
    pub fn coverage(&self) -> f64 {
        self.lines_covered as f64 / self.total_declared.max(1) as f64
    }
}

/// Exhaustively walks `app`, bounded by `max_requests` (the walk is not
/// time-budgeted — it is a model audit, not an experiment).
///
/// Forms are submitted `form_rounds` times each with distinct values, so
/// input-dependent branches and stateful flows are exercised repeatedly;
/// password fields get the demo password so login gates open.
pub fn audit_reachability(
    app: Box<dyn WebApp>,
    max_requests: u64,
    form_rounds: u32,
) -> AuditReport {
    let mut host = AppHost::new(app);
    let origin = host.app().seed_url();
    let total_declared = host.app().code_model().total_lines();

    let mut visited: BTreeSet<String> = BTreeSet::new();
    let mut submitted: BTreeSet<String> = BTreeSet::new();
    let mut queue: VecDeque<Request> = VecDeque::new();
    let mut cookie: Option<SessionId> = None;
    let mut fill = 0u64;

    queue.push_back(Request::get(origin.clone()));
    visited.insert(origin.normalized().to_owned());

    while let Some(mut req) = queue.pop_front() {
        if host.request_count() >= max_requests {
            break;
        }
        req.session = cookie;
        let resp: Response = host.fetch(&req);
        if resp.session.is_some() {
            cookie = resp.session;
        }
        let doc = match resp.body {
            Body::Html(doc) => doc,
            Body::Redirect(location) => {
                if location.same_origin(&origin) && visited.insert(location.normalized().to_owned())
                {
                    queue.push_back(Request::get(location));
                }
                continue;
            }
            Body::Empty => continue,
        };

        for el in doc.interactables() {
            if !el.target_url().same_origin(&origin) {
                continue;
            }
            match &el {
                Interactable::Link { href, .. } => {
                    if visited.insert(href.normalized().to_owned()) {
                        queue.push_back(Request::get(href.clone()));
                    }
                }
                Interactable::Button { target, .. } => {
                    // Buttons are stateful: press them several times.
                    let key = el.signature();
                    if submitted.insert(key) {
                        for _ in 0..form_rounds {
                            queue.push_back(Request::post(target.clone(), Vec::new()));
                        }
                    }
                }
                Interactable::Form(form) => {
                    let key = el.signature();
                    if submitted.insert(key) {
                        for round in 0..form_rounds {
                            fill += 1;
                            let data: Vec<(String, String)> = form
                                .fields
                                .iter()
                                .map(|f| {
                                    let value = match &f.kind {
                                        FieldKind::Text => format!("audit{fill}r{round}"),
                                        FieldKind::Hidden(v) => v.clone(),
                                        FieldKind::Select(opts) => opts
                                            .get(round as usize % opts.len().max(1))
                                            .cloned()
                                            .unwrap_or_default(),
                                        FieldKind::Password => "password123".to_owned(),
                                    };
                                    (f.name.clone(), value)
                                })
                                .collect();
                            let req = match form.method {
                                Method::Get => {
                                    let mut url = form.action.clone();
                                    for (k, v) in data {
                                        url = url.with_query(k, v);
                                    }
                                    Request::get(url)
                                }
                                Method::Post => Request::post(form.action.clone(), data),
                            };
                            queue.push_back(req);
                        }
                    }
                }
            }
        }
    }

    AuditReport {
        urls_visited: visited.len(),
        lines_covered: host.tracker().lines_covered_unchecked(),
        total_declared,
        requests: host.request_count(),
        clamped_blocks: host.tracker().clamped_hits(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use crate::coverage::CoverageMode;

    #[test]
    fn small_apps_are_almost_fully_reachable() {
        // AddressBook and Vanilla: nearly everything is reachable; the
        // remainder is multi-round conditional content (deep stages,
        // unexhausted validation branches).
        for name in ["addressbook", "vanilla"] {
            let report = audit_reachability(apps::build(name).unwrap(), 50_000, 24);
            assert!(
                report.coverage() > 0.93,
                "{name}: audit reached only {:.1}% ({} of {})",
                100.0 * report.coverage(),
                report.lines_covered,
                report.total_declared
            );
        }
    }

    #[test]
    fn every_model_is_mostly_reachable_modulo_dead_code() {
        for name in apps::all_names() {
            let app = apps::build(name).unwrap();
            let is_node = app.coverage_mode() == CoverageMode::Final;
            let report = audit_reachability(app, 60_000, 16);
            // Node models carry deliberately dead bundles (~30-45%); PHP
            // models should be broadly reachable. Branch pools need many
            // submissions to exhaust, so thresholds stay conservative.
            let floor = if is_node { 0.50 } else { 0.80 };
            assert!(
                report.coverage() > floor,
                "{name}: {:.1}% reachable (floor {floor})",
                100.0 * report.coverage()
            );
            assert!(report.urls_visited > 10, "{name}: walk explored URLs");
            assert_eq!(
                report.clamped_blocks, 0,
                "{name}: model executed blocks outside its declared files"
            );
        }
    }

    #[test]
    fn request_bound_is_respected() {
        let report = audit_reachability(apps::build("drupal").unwrap(), 500, 4);
        assert!(report.requests <= 500 + 1);
        assert!(report.lines_covered > 0);
    }
}
