//! HTTP header wire formats.
//!
//! The simulator's [`Request`](crate::http::Request) and
//! [`Response`](crate::http::Response) carry their session as a typed
//! field; real traffic carries it in `Cookie` / `Set-Cookie` headers. This
//! module provides the translation — what an HTTP recorder or proxy in
//! front of the testbed would emit and parse — plus minimal header-block
//! rendering for request/response logging.

use crate::http::{Method, Request, Response, SessionId, Status};
use std::fmt::Write as _;

/// The cookie name carrying the session id, mirroring PHP's default.
pub const SESSION_COOKIE: &str = "PHPSESSID";

/// Formats a `Set-Cookie` header value for a session.
pub fn set_cookie(session: SessionId) -> String {
    format!("{SESSION_COOKIE}={session}; Path=/; HttpOnly")
}

/// Formats the `Cookie` request header for a session.
pub fn cookie(session: SessionId) -> String {
    format!("{SESSION_COOKIE}={session}")
}

/// Parses a session id out of a `Cookie` header value, tolerating other
/// cookies around it. Returns `None` if the session cookie is absent or
/// malformed.
pub fn parse_cookie(header: &str) -> Option<SessionId> {
    for pair in header.split(';') {
        let pair = pair.trim();
        if let Some(value) = pair.strip_prefix(SESSION_COOKIE).and_then(|r| r.strip_prefix('=')) {
            // Format produced by Display: `sess-<16 hex digits>`.
            let hex = value.strip_prefix("sess-")?;
            if hex.len() != 16 {
                return None;
            }
            return u64::from_str_radix(hex, 16).ok().map(SessionId::from_raw);
        }
    }
    None
}

/// Renders a request as an HTTP/1.1 message head (request line + headers +
/// form body for POSTs) — the traffic a recording proxy would log.
pub fn render_request(req: &Request) -> String {
    let mut out = String::new();
    let path_and_query = {
        let full = req.url.to_string();
        let after_scheme = full.splitn(4, '/').nth(3).map(|p| format!("/{p}"));
        after_scheme.unwrap_or_else(|| "/".to_owned())
    };
    let _ = writeln!(out, "{} {} HTTP/1.1", req.method, path_and_query);
    let _ = writeln!(out, "Host: {}", req.url.host());
    if let Some(session) = req.session {
        let _ = writeln!(out, "Cookie: {}", cookie(session));
    }
    if req.method == Method::Post {
        let body: Vec<String> =
            req.form.iter().map(|(k, v)| format!("{k}={}", urlencode(v))).collect();
        let body = body.join("&");
        let _ = writeln!(out, "Content-Type: application/x-www-form-urlencoded");
        let _ = writeln!(out, "Content-Length: {}", body.len());
        let _ = writeln!(out);
        out.push_str(&body);
    }
    out
}

/// Renders a response head (status line + headers) with the HTML body.
pub fn render_response(resp: &Response) -> String {
    let mut out = String::new();
    let reason = match resp.status {
        Status::Ok => "OK",
        Status::Found => "Found",
        Status::NotFound => "Not Found",
        Status::ServerError => "Internal Server Error",
    };
    let _ = writeln!(out, "HTTP/1.1 {} {reason}", resp.status.code());
    if let Some(session) = resp.session {
        let _ = writeln!(out, "Set-Cookie: {}", set_cookie(session));
    }
    match &resp.body {
        crate::http::Body::Html(doc) => {
            let html = doc.to_html();
            let _ = writeln!(out, "Content-Type: text/html; charset=utf-8");
            let _ = writeln!(out, "Content-Length: {}", html.len());
            let _ = writeln!(out);
            out.push_str(&html);
        }
        crate::http::Body::Redirect(location) => {
            let _ = writeln!(out, "Location: {location}");
        }
        crate::http::Body::Empty => {
            let _ = writeln!(out, "Content-Length: 0");
        }
    }
    out
}

fn urlencode(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char);
            }
            b' ' => out.push('+'),
            other => {
                let _ = write!(out, "%{other:02X}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use crate::server::AppHost;

    #[test]
    fn cookie_roundtrips() {
        let sid = SessionId::from_raw(0xdead_beef);
        let header = cookie(sid);
        assert_eq!(parse_cookie(&header), Some(sid));
        // Tolerates surrounding cookies.
        let messy = format!("theme=dark; {header} ; lang=en");
        assert_eq!(parse_cookie(&messy), Some(sid));
    }

    #[test]
    fn parse_cookie_rejects_garbage() {
        assert_eq!(parse_cookie(""), None);
        assert_eq!(parse_cookie("theme=dark"), None);
        assert_eq!(parse_cookie(&format!("{SESSION_COOKIE}=not-a-session")), None);
        assert_eq!(parse_cookie(&format!("{SESSION_COOKIE}=sess-zz")), None);
    }

    #[test]
    fn set_cookie_is_httponly() {
        let header = set_cookie(SessionId::from_raw(1));
        assert!(header.contains("HttpOnly"));
        assert!(header.starts_with(SESSION_COOKIE));
    }

    #[test]
    fn urlencode_escapes_reserved() {
        assert_eq!(urlencode("a b&c=d"), "a+b%26c%3Dd");
        assert_eq!(urlencode("safe-._~"), "safe-._~");
    }

    #[test]
    fn renders_a_realistic_exchange() {
        let mut host = AppHost::new(apps::build("phpbb2").unwrap());
        let mut req = Request::post(
            "http://phpbb.local/post".parse().unwrap(),
            vec![("title".into(), "hello world".into())],
        );
        let resp = host.fetch(&req);
        req.session = resp.session;

        let req_text = render_request(&req);
        assert!(req_text.starts_with("POST /post HTTP/1.1"));
        assert!(req_text.contains("Host: phpbb.local"));
        assert!(req_text.contains("Cookie: PHPSESSID=sess-"));
        assert!(req_text.contains("title=hello+world"));

        let resp_text = render_response(&resp);
        assert!(resp_text.starts_with("HTTP/1.1 200 OK"));
        assert!(resp_text.contains("Set-Cookie: PHPSESSID=sess-"));
        assert!(resp_text.contains("Content-Type: text/html"));
        assert!(resp_text.contains("<!DOCTYPE html>"));
    }

    #[test]
    fn renders_redirects_with_location() {
        let resp = Response::redirect("http://h/target".parse().unwrap());
        let text = render_response(&resp);
        assert!(text.starts_with("HTTP/1.1 302 Found"));
        assert!(text.contains("Location: http://h/target"));
    }
}
